"""Command-line interface: ``repro-service`` / ``python -m repro.service``.

Three subcommands:

* ``make-batch`` — generate a JSON batch of reduced scenario submissions
  (optionally with duplicate fingerprints — the cache-hit smoke workload);
* ``serve`` — submit a batch against a service root and drain it to
  completion.  Killing this process at any instant is safe: re-running the
  same command against the same ``--root`` resumes from the journal,
  completes the interrupted jobs, and serves already-computed fingerprints
  from the cache;
* ``report`` — print the durable state of a service root (no pool is
  started), as the smoke/CI harness consumes it.

Batch file format: a JSON list; each element is either an encoded
``ScenarioConfig`` dict (``repro.snapshot.capture.encode_config``) or
``{"config": {...}, "priority": N}``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

from repro.errors import ReproError
from repro.experiments.scenario import random_waypoint_scenario, scale_scenario
from repro.service.api import ScenarioService
from repro.service.store import JobStore
from repro.snapshot.capture import encode_config
from repro.snapshot.restore import decode_config

__all__ = ["build_parser", "main", "make_batch"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-service",
        description=(
            "Supervised, crash-tolerant scenario-execution service with a "
            "fingerprint-keyed result cache (see docs/service.md)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser(
        "serve", help="submit a batch and drain it to completion"
    )
    serve.add_argument("--root", required=True, metavar="DIR",
                       help="service state directory (journal, cache, "
                            "quarantine); reused across restarts")
    serve.add_argument("--batch", required=True, metavar="FILE",
                       help="JSON batch of scenario submissions")
    serve.add_argument("--workers", type=int, default=1,
                       help="worker processes (0 = run inline, serial)")
    serve.add_argument("--queue-capacity", type=int, default=64)
    serve.add_argument("--timeout", type=float, default=None,
                       help="per-job heartbeat deadline in seconds")
    serve.add_argument("--max-attempts", type=int, default=2)
    serve.add_argument("--seed", type=int, default=0,
                       help="service seed (retry backoff schedules)")
    serve.add_argument("--backoff-base", type=float, default=0.05)
    serve.add_argument("--poll-interval", type=float, default=0.02)
    serve.add_argument("--max-wall", type=float, default=None,
                       help="stop draining after this many wall seconds "
                            "(state stays durable)")

    report = sub.add_parser(
        "report", help="print a service root's durable state as JSON"
    )
    report.add_argument("--root", required=True, metavar="DIR")

    batch = sub.add_parser(
        "make-batch", help="write a reduced-scenario batch file"
    )
    batch.add_argument("--out", required=True, metavar="FILE")
    batch.add_argument("--jobs", type=int, default=4,
                       help="distinct scenario configs (fresh fingerprints)")
    batch.add_argument("--duplicates", type=int, default=2,
                       help="extra submissions duplicating the first "
                            "configs' fingerprints (cache-hit workload)")
    batch.add_argument("--seed", type=int, default=1)
    batch.add_argument("--sim-time", type=float, default=60.0)
    batch.add_argument("--nodes", type=int, default=6)
    return parser


def make_batch(
    jobs: int,
    duplicates: int,
    *,
    seed: int = 1,
    sim_time: float = 60.0,
    nodes: int = 6,
) -> list[dict[str, Any]]:
    """A mixed batch: *jobs* fresh fingerprints + *duplicates* repeats."""
    base = scale_scenario(
        random_waypoint_scenario(policy="fifo", router="snw"),
        node_factor=nodes / 100.0,
        time_factor=sim_time / 18000.0,
    )
    configs = [base.replace(seed=seed + i) for i in range(max(1, jobs))]
    entries: list[dict[str, Any]] = [
        {"config": encode_config(c), "priority": 0} for c in configs
    ]
    for i in range(max(0, duplicates)):
        entries.append(
            {"config": encode_config(configs[i % len(configs)]), "priority": 0}
        )
    return entries


def _load_batch(path: str) -> list[tuple[Any, int]]:
    raw = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(raw, list):
        raise ReproError(f"batch file {path} must be a JSON list")
    out = []
    for item in raw:
        if isinstance(item, dict) and "config" in item:
            out.append(
                (decode_config(item["config"]), int(item.get("priority", 0)))
            )
        elif isinstance(item, dict):
            out.append((decode_config(item), 0))
        else:
            raise ReproError(f"unrecognized batch entry: {item!r}")
    return out


def _cmd_serve(args: argparse.Namespace) -> int:
    submissions = _load_batch(args.batch)
    with ScenarioService(
        args.root,
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        timeout=args.timeout,
        max_attempts=args.max_attempts,
        seed=args.seed,
        backoff_base=args.backoff_base,
    ) as service:
        for config, priority in submissions:
            ticket = service.submit(config, priority=priority)
            print(
                f"submit {ticket.fingerprint[:12]} -> {ticket.status}"
                + (f" job={ticket.job_id}" if ticket.job_id else "")
                + (
                    f" retry_after={ticket.retry_after:.2f}s"
                    if ticket.retry_after is not None
                    else ""
                ),
                flush=True,
            )
        drained = service.drain(
            poll_interval=args.poll_interval, max_wall=args.max_wall
        )
        service.write_report()
        counts = service.store.counts()
        print(
            "drained" if drained else "wall budget exhausted",
            json.dumps(counts, sort_keys=True),
            flush=True,
        )
        return 0 if drained and not service.open_jobs() else 1


def _cmd_report(args: argparse.Namespace) -> int:
    root = Path(args.root)
    store = JobStore(root / "journal.jsonl")
    cache_dir = root / "cache"
    payload = {
        "root": str(root),
        "counts": store.counts(),
        "jobs": [
            {
                "job_id": j.job_id,
                "state": j.state,
                "fingerprint": j.fingerprint,
                "attempts": j.attempts,
                "cache_hit": j.cache_hit,
                "shed_reason": j.shed_reason,
                "error_type": j.error_type,
            }
            for j in store.jobs()
        ],
        "cache_entries": sorted(
            p.name for p in cache_dir.glob("*.json.gz")
        ) if cache_dir.is_dir() else [],
        "skipped_journal_lines": store.skipped_lines,
    }
    json.dump(payload, sys.stdout, indent=2, sort_keys=True)
    print()
    return 0


def _cmd_make_batch(args: argparse.Namespace) -> int:
    entries = make_batch(
        args.jobs,
        args.duplicates,
        seed=args.seed,
        sim_time=args.sim_time,
        nodes=args.nodes,
    )
    Path(args.out).write_text(
        json.dumps(entries, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {len(entries)} submissions to {args.out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "make-batch":
            return _cmd_make_batch(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
