"""Append-only job journal for the scenario service.

Every job-state transition is one JSONL line, flushed and fsynced as
written, so a SIGKILL at any instant loses at most the line being written.
The journal is the service's *only* authoritative state: restarting a
killed service replays the file (torn final line tolerated, exactly like
:class:`repro.experiments.checkpoint.SweepCheckpoint`) and resumes where it
died — jobs recorded ``running`` at the crash are put back in the queue,
terminal jobs stay terminal, and nothing accepted is ever forgotten.

State machine (see docs/service.md)::

    queued ──> running ──> done
       │          │  └───> failed        (quarantined after max attempts)
       │          └──────> queued        (requeued on crash recovery)
       ├─────────> done                  (cache hit, never ran)
       ├─────────> failed                (config payload lost, cache miss)
       ├─────────> shed                  (displaced by a higher priority)
       └─────────> cancelled

``done``/``failed``/``cancelled``/``shed`` are terminal.  A ``done`` event
records whether the result came from the fingerprint cache (``cache_hit``)
or a fresh computation — the exactly-once accounting the chaos oracles
check.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError

__all__ = [
    "CANCELLED",
    "DONE",
    "FAILED",
    "JOB_STATES",
    "JobRecord",
    "JobStore",
    "QUEUED",
    "RUNNING",
    "SHED",
    "TERMINAL_STATES",
]

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
SHED = "shed"

JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED, SHED)
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED, SHED})

#: Transitions the journal accepts; anything else is a service bug.  A
#: crash-recovery requeue (``running -> queued``) is deliberately legal.
_LEGAL = {
    # queued -> done serves a cache hit without running; queued -> failed
    # is the dispatch-time dead end (journal lost the config payload and
    # the cache cannot serve the fingerprint).
    QUEUED: {RUNNING, SHED, CANCELLED, DONE, FAILED},
    RUNNING: {DONE, FAILED, QUEUED, CANCELLED},
}


@dataclass(frozen=True)
class JobRecord:
    """The folded (current) view of one job after journal replay."""

    job_id: str
    fingerprint: str
    state: str
    priority: int = 0
    #: Admission order — the deterministic tiebreak for queueing/shedding.
    seq: int = 0
    attempts: int = 0
    #: Encoded :class:`~repro.experiments.scenario.ScenarioConfig` (the
    #: ``queued`` event carries it so a restart can re-dispatch the job).
    config: dict[str, Any] | None = None
    #: ``done`` bookkeeping: did the result come from the cache?
    cache_hit: bool = False
    error_type: str = ""
    error_message: str = ""
    #: Why a ``shed`` job was dropped (see docs/chaos.md taxonomy).
    shed_reason: str = ""
    #: Path of the quarantine reproducer for a poisoned ``failed`` job.
    quarantine: str = ""

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES


class JobStore:
    """One service's append-only job journal (JSONL, fsync per line)."""

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = Path(path)
        self._jobs: dict[str, JobRecord] = {}
        #: Count of journal lines skipped on load (torn tail, corruption).
        self.skipped_lines = 0
        self._max_seq = -1
        if self.path.exists():
            self._load()

    # -- replay ------------------------------------------------------------

    def _load(self) -> None:
        with open(self.path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    self._fold(entry)
                except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                    # Torn final line from a mid-write crash, or bytes a
                    # chaos campaign truncated/garbled.  The line before it
                    # was fsynced, so skipping loses at most one transition
                    # — which replays as a requeue, never a lost job.
                    self.skipped_lines += 1

    def _fold(self, entry: dict[str, Any]) -> None:
        job_id = entry["job"]
        event = entry["event"]
        if event not in JOB_STATES:
            raise ValueError(f"unknown job event {event!r}")
        prev = self._jobs.get(job_id)
        if prev is None:
            if event != QUEUED:
                # An orphan transition whose queued line was lost: keep the
                # job visible rather than dropping it, but only terminal
                # states are trustworthy without the config payload.
                self._jobs[job_id] = JobRecord(
                    job_id=job_id,
                    fingerprint=str(entry.get("fingerprint", "")),
                    state=event,
                    attempts=int(entry.get("attempts", 0)),
                    cache_hit=bool(entry.get("cache_hit", False)),
                    error_type=str(entry.get("error_type", "")),
                    error_message=str(entry.get("error_message", "")),
                    shed_reason=str(entry.get("shed_reason", "")),
                    quarantine=str(entry.get("quarantine", "")),
                )
                return
            record = JobRecord(
                job_id=job_id,
                fingerprint=entry["fingerprint"],
                state=QUEUED,
                priority=int(entry.get("priority", 0)),
                seq=int(entry.get("seq", 0)),
                attempts=int(entry.get("attempts", 0)),
                config=entry.get("config"),
            )
            self._jobs[job_id] = record
            self._max_seq = max(self._max_seq, record.seq)
            return
        changes: dict[str, Any] = {"state": event}
        if "attempts" in entry:
            changes["attempts"] = int(entry["attempts"])
        for key in (
            "cache_hit", "error_type", "error_message", "shed_reason",
            "quarantine",
        ):
            if key in entry:
                changes[key] = entry[key]
        self._jobs[job_id] = replace(prev, **changes)

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._jobs)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._jobs

    def get(self, job_id: str) -> JobRecord | None:
        return self._jobs.get(job_id)

    def jobs(self) -> list[JobRecord]:
        """All jobs in admission order (stable across replays)."""
        return sorted(self._jobs.values(), key=lambda j: (j.seq, j.job_id))

    def open_jobs(self) -> list[JobRecord]:
        """Jobs not yet in a terminal state, in admission order."""
        return [j for j in self.jobs() if not j.terminal]

    def counts(self) -> dict[str, int]:
        out = {state: 0 for state in JOB_STATES}
        for job in self._jobs.values():
            out[job.state] += 1
        return out

    def next_seq(self) -> int:
        """The admission sequence number for the next accepted job."""
        return self._max_seq + 1

    # -- writes ------------------------------------------------------------

    def _needs_newline(self) -> bool:
        """True when the journal exists and does not end in a newline.

        Same torn-tail repair as the sweep checkpoint: prepending a newline
        quarantines a half-written fragment on its own line, where
        :meth:`_load` skips it, instead of gluing two records together.
        """
        try:
            with open(self.path, "rb") as fh:
                fh.seek(-1, os.SEEK_END)
                return fh.read(1) != b"\n"
        except (FileNotFoundError, OSError):
            return False

    def _append(self, entry: dict[str, Any]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        prefix = "\n" if self._needs_newline() else ""
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(prefix + json.dumps(entry, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        self._fold(entry)

    def record_queued(
        self,
        job_id: str,
        fingerprint: str,
        *,
        priority: int = 0,
        config: dict[str, Any] | None = None,
        attempts: int = 0,
        seq: int | None = None,
    ) -> JobRecord:
        """Admit a new job, or requeue an existing (crashed) one."""
        prev = self._jobs.get(job_id)
        if prev is not None and prev.state not in _LEGAL:
            raise ConfigurationError(
                f"job {job_id} is {prev.state}; cannot requeue a terminal job"
            )
        entry: dict[str, Any] = {
            "job": job_id,
            "event": QUEUED,
            "fingerprint": fingerprint,
            "attempts": attempts,
        }
        if prev is None:
            entry["priority"] = priority
            entry["seq"] = self.next_seq() if seq is None else seq
            entry["config"] = config
        self._append(entry)
        return self._jobs[job_id]

    def _transition(self, job_id: str, event: str, **fields: Any) -> JobRecord:
        prev = self._jobs.get(job_id)
        if prev is None:
            raise ConfigurationError(f"unknown job {job_id}")
        if event not in _LEGAL.get(prev.state, set()):
            raise ConfigurationError(
                f"illegal transition {prev.state} -> {event} for job {job_id}"
            )
        entry = {"job": job_id, "event": event, **fields}
        self._append(entry)
        return self._jobs[job_id]

    def record_running(self, job_id: str, *, attempts: int) -> JobRecord:
        return self._transition(job_id, RUNNING, attempts=attempts)

    def record_done(self, job_id: str, *, cache_hit: bool) -> JobRecord:
        return self._transition(job_id, DONE, cache_hit=cache_hit)

    def record_failed(
        self,
        job_id: str,
        *,
        error_type: str,
        error_message: str,
        attempts: int,
        quarantine: str = "",
    ) -> JobRecord:
        return self._transition(
            job_id,
            FAILED,
            error_type=error_type,
            error_message=error_message,
            attempts=attempts,
            quarantine=quarantine,
        )

    def record_shed(self, job_id: str, *, reason: str) -> JobRecord:
        return self._transition(job_id, SHED, shed_reason=reason)

    def record_cancelled(self, job_id: str) -> JobRecord:
        return self._transition(job_id, CANCELLED)

    def state_digest(self) -> str:
        """Canonical JSON of the folded job map (replay-stability oracle).

        Two replays of the same journal bytes must produce byte-identical
        digests; the chaos campaign asserts exactly that after every crash,
        truncation and restart.
        """
        payload = {
            job_id: {
                "state": job.state,
                "fingerprint": job.fingerprint,
                "priority": job.priority,
                "seq": job.seq,
                "attempts": job.attempts,
                "cache_hit": job.cache_hit,
                "shed_reason": job.shed_reason,
                "error_type": job.error_type,
            }
            for job_id, job in self._jobs.items()
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))
