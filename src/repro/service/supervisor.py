"""Supervised job execution: worker pool, heartbeats, retries, quarantine.

The supervisor owns a ``spawn``-context process pool (the same start-method
discipline as :mod:`repro.parallel.pool`) and runs one scenario per worker
submission.  It is built to keep serving while workers misbehave:

* **worker death** — a :class:`BrokenProcessPool` poisons every in-flight
  future; the pool is torn down and rebuilt, the affected jobs go through
  the bounded-retry path;
* **hangs** — each flight carries a deadline on the supervisor's injected
  clock (heartbeat detection is a pure function of that clock, so tests
  drive it deterministically); an overdue flight is abandoned, the pool
  rebuilt, and the job retried;
* **bounded retries** — failed attempts are rescheduled after the seeded
  equal-jitter :func:`repro.experiments.sweep.backoff_delays` (never an
  ad-hoc sleep — reprolint REP010 enforces this repo-wide).  Retries rerun
  the *byte-exact same config*: the result cache is keyed by config
  fingerprint, and mutating the seed on retry would break the
  same-fingerprint-same-bytes soundness argument (docs/service.md);
* **poison-job quarantine** — a job that exhausts ``max_attempts`` is
  failed terminally and written as a self-contained JSON reproducer in the
  chaos-corpus format (:mod:`repro.chaos.corpus`), so triage starts from
  the same artifact the fuzzer produces.

``workers=0`` runs jobs inline (serial, deterministic, no processes) —
the mode benchmarks and most tests use; the retry/backoff machinery is
identical in both modes.
"""

from __future__ import annotations

import os
import signal
import time
from collections.abc import Callable
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError
from repro.experiments.runner import run_scenario_safe
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.sweep import backoff_delays
from repro.parallel.pool import _pool_context
from repro.reports.summary import FailedRun, RunSummary
from repro.rng import derive_seed

__all__ = ["JobOutcome", "WorkerSupervisor"]

#: Error type recorded when a flight exceeds its heartbeat deadline.
ERROR_TIMEOUT = "WorkerTimeout"
#: Error type recorded when the worker process died under a flight.
ERROR_WORKER_DEATH = "WorkerDeath"


@dataclass(frozen=True)
class JobOutcome:
    """One job's terminal verdict from the supervisor."""

    job_id: str
    result: RunSummary | FailedRun
    attempts: int
    #: Path of the quarantine reproducer, when the job was poisoned.
    quarantine: str = ""


@dataclass
class _Flight:
    job_id: str
    config: ScenarioConfig
    attempts: int  # 1-based attempt number this flight is running
    future: Future | None = None
    deadline: float | None = None


@dataclass
class _Retry:
    job_id: str
    config: ScenarioConfig
    attempts: int  # attempts already consumed
    not_before: float


@dataclass
class SupervisorStats:
    worker_deaths: int = 0
    timeouts: int = 0
    retries: int = 0
    quarantined: int = 0
    pool_rebuilds: int = 0
    completed: int = 0
    failed: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(vars(self))


class WorkerSupervisor:
    """Runs scenario jobs on supervised workers; never raises for a job."""

    def __init__(
        self,
        workers: int,
        *,
        run_fn: Callable[[ScenarioConfig], RunSummary | FailedRun] | None = None,
        timeout: float | None = None,
        max_attempts: int = 2,
        seed: int = 0,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        quarantine_dir: str | os.PathLike[str] | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1: {max_attempts}"
            )
        self.workers = max(0, int(workers))
        self._run_fn = run_fn if run_fn is not None else run_scenario_safe
        self.timeout = timeout
        self.max_attempts = max_attempts
        self._seed = seed
        self._backoff_base = backoff_base
        self._backoff_cap = backoff_cap
        self._quarantine_dir = (
            Path(quarantine_dir) if quarantine_dir is not None else None
        )
        # perf_counter, not time.time: diagnostic/pacing only, REP002-clean.
        self._clock = clock if clock is not None else time.perf_counter
        self._pool: ProcessPoolExecutor | None = None
        self._flights: list[_Flight] = []
        self._retries: list[_Retry] = []
        self._ready: list[JobOutcome] = []
        self._dead = False
        self.stats = SupervisorStats()

    # -- pool lifecycle ----------------------------------------------------

    @property
    def inline(self) -> bool:
        return self.workers == 0

    @property
    def healthy(self) -> bool:
        """False once the pool is unrecoverable (degraded mode trigger)."""
        return not self._dead

    def mark_dead(self) -> None:
        """Declare the worker pool unrecoverable (tests / chaos campaigns)."""
        self._dead = True

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=_pool_context()
            )
        return self._pool

    def _rebuild_pool(self) -> None:
        """Abandon the current pool and resubmit the surviving flights."""
        self.stats.pool_rebuilds += 1
        if self._pool is not None:
            # wait=False: a hung/dying worker must not block the service.
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        for flight in self._flights:
            self._launch(flight)

    def worker_pids(self) -> list[int]:
        """Live pool worker pids, sorted (deterministic kill target order)."""
        if self._pool is None:
            return []
        return sorted(
            p.pid for p in self._pool._processes.values() if p.pid is not None
        )

    def kill_worker(self, index: int = 0) -> int | None:
        """SIGKILL the *index*-th worker (chaos campaigns, kill tests)."""
        pids = self.worker_pids()
        if not pids:
            return None
        pid = pids[index % len(pids)]
        os.kill(pid, signal.SIGKILL)
        return pid

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    # -- capacity ----------------------------------------------------------

    def has_capacity(self) -> bool:
        if self._dead:
            return False
        if self.inline:
            return True
        return len(self._flights) < self.workers

    @property
    def saturated(self) -> bool:
        return not self.has_capacity()

    def pending(self) -> int:
        """Jobs the supervisor still owes an outcome for."""
        return len(self._flights) + len(self._retries) + len(self._ready)

    # -- submission --------------------------------------------------------

    def submit(
        self, job_id: str, config: ScenarioConfig, *, attempts: int = 0
    ) -> None:
        """Start (or restart) a job; its outcome arrives via :meth:`poll`."""
        if self._dead:
            raise ConfigurationError(
                "supervisor is marked dead; cannot accept work"
            )
        flight = _Flight(job_id=job_id, config=config, attempts=attempts + 1)
        if self.inline:
            self._settle(flight, self._run_inline(config))
            return
        self._flights.append(flight)
        self._launch(flight)

    def _run_inline(self, config: ScenarioConfig) -> RunSummary | FailedRun:
        result = self._run_fn(config)
        if not isinstance(result, (RunSummary, FailedRun)):
            raise ConfigurationError(
                f"service run_fn returned {type(result).__name__}; expected "
                "RunSummary or FailedRun"
            )
        return result

    def _launch(self, flight: _Flight) -> None:
        pool = self._ensure_pool()
        flight.future = pool.submit(self._run_fn, flight.config)
        flight.deadline = (
            self._clock() + self.timeout if self.timeout is not None else None
        )

    # -- harvesting --------------------------------------------------------

    def poll(self) -> list[JobOutcome]:
        """Settle everything that finished, died, timed out, or is due a
        retry; returns terminal outcomes in deterministic (submission)
        order.  Never blocks."""
        self._promote_retries()
        if not self.inline:
            self._harvest_flights()
        ready, self._ready = self._ready, []
        return ready

    def _promote_retries(self) -> None:
        now = self._clock()
        due = [r for r in self._retries if r.not_before <= now]
        if self.inline:
            for retry in due:
                self._retries.remove(retry)
                flight = _Flight(
                    job_id=retry.job_id,
                    config=retry.config,
                    attempts=retry.attempts + 1,
                )
                self._settle(flight, self._run_inline(retry.config))
            return
        for retry in due:
            if len(self._flights) >= self.workers:
                break
            self._retries.remove(retry)
            flight = _Flight(
                job_id=retry.job_id,
                config=retry.config,
                attempts=retry.attempts + 1,
            )
            self._flights.append(flight)
            self._launch(flight)

    def _harvest_flights(self) -> None:
        now = self._clock()
        broken = False
        settled: list[_Flight] = []
        timed_out: list[_Flight] = []
        for flight in self._flights:
            future = flight.future
            if future is not None and future.done():
                exc = None if future.cancelled() else future.exception()
                if isinstance(exc, BrokenProcessPool):
                    broken = True
                    continue  # handled below, pool-wide
                settled.append(flight)
            elif flight.deadline is not None and now > flight.deadline:
                timed_out.append(flight)

        for flight in settled:
            self._flights.remove(flight)
            assert flight.future is not None
            exc = (
                None if flight.future.cancelled() else flight.future.exception()
            )
            if flight.future.cancelled() or exc is not None:
                # A raising run_fn (run_scenario_safe never raises, but an
                # injected one might): treated like any failed attempt.
                failure = FailedRun(
                    scenario=flight.config.name,
                    policy=flight.config.policy,
                    seed=flight.config.seed,
                    error_type=type(exc).__name__ if exc else "Cancelled",
                    error_message=str(exc) if exc else "future cancelled",
                )
                self._settle(flight, failure)
            else:
                self._settle(flight, flight.future.result())

        if timed_out:
            self.stats.timeouts += len(timed_out)
            for flight in timed_out:
                self._flights.remove(flight)
                if flight.future is not None:
                    flight.future.cancel()
                self._settle(
                    flight,
                    FailedRun(
                        scenario=flight.config.name,
                        policy=flight.config.policy,
                        seed=flight.config.seed,
                        error_type=ERROR_TIMEOUT,
                        error_message=(
                            f"no heartbeat within {self.timeout}s "
                            f"(attempt {flight.attempts})"
                        ),
                    ),
                )
            # The overdue worker still occupies a pool slot; abandon the
            # pool so the remaining flights get fresh workers.
            broken = True

        if broken:
            died = [
                f
                for f in self._flights
                if f.future is not None
                and f.future.done()
                and not f.future.cancelled()
                and isinstance(f.future.exception(), BrokenProcessPool)
            ]
            if died:
                self.stats.worker_deaths += 1
            for flight in died:
                self._flights.remove(flight)
                self._settle(
                    flight,
                    FailedRun(
                        scenario=flight.config.name,
                        policy=flight.config.policy,
                        seed=flight.config.seed,
                        error_type=ERROR_WORKER_DEATH,
                        error_message=(
                            f"worker died (attempt {flight.attempts})"
                        ),
                    ),
                )
            self._rebuild_pool()

    # -- settle / retry / quarantine ---------------------------------------

    def _settle(
        self, flight: _Flight, result: RunSummary | FailedRun
    ) -> None:
        if isinstance(result, RunSummary):
            self.stats.completed += 1
            self._ready.append(
                JobOutcome(
                    job_id=flight.job_id,
                    result=result,
                    attempts=flight.attempts,
                )
            )
            return
        if flight.attempts < self.max_attempts:
            self.stats.retries += 1
            delay = self._backoff_for(flight.job_id)[flight.attempts - 1]
            self._retries.append(
                _Retry(
                    job_id=flight.job_id,
                    config=flight.config,
                    attempts=flight.attempts,
                    not_before=self._clock() + delay,
                )
            )
            return
        self.stats.failed += 1
        self.stats.quarantined += 1
        quarantine = self._quarantine(flight, result)
        self._ready.append(
            JobOutcome(
                job_id=flight.job_id,
                result=result.replace_attempts(flight.attempts),
                attempts=flight.attempts,
                quarantine=quarantine,
            )
        )

    def _backoff_for(self, job_id: str) -> list[float]:
        """The job's full seeded retry schedule (deterministic per job)."""
        return backoff_delays(
            derive_seed(self._seed, "service.backoff", job_id),
            max(1, self.max_attempts - 1),
            base=self._backoff_base,
            cap=self._backoff_cap,
        )

    def _quarantine(self, flight: _Flight, failure: FailedRun) -> str:
        """Write a poison job as a chaos-corpus reproducer; returns path."""
        if self._quarantine_dir is None:
            return ""
        from repro.chaos.corpus import make_entry, write_entry
        from repro.chaos.oracles import ORACLE_CRASH, OracleFailure

        entry = make_entry(
            flight.config,
            OracleFailure(
                oracle=ORACLE_CRASH,
                detail=(
                    f"service job {flight.job_id} poisoned after "
                    f"{flight.attempts} attempts: {failure.error_message}"
                ),
                invariant=failure.error_type,
            ),
        )
        try:
            return str(write_entry(self._quarantine_dir, entry))
        except OSError as exc:
            # Quarantine is diagnostics; a full disk must not turn a
            # cleanly-failed job into a crashed service.
            return f"unwritable: {exc}"
