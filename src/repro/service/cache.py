"""Fingerprint-keyed result cache for the scenario service.

Soundness argument (docs/service.md): the cache key is
:func:`repro.experiments.checkpoint.config_fingerprint` — a content hash of
the *entire* scenario config, seed included — and the simulator is
bit-reproducible given a config (the determinism suite's core guarantee).
Same fingerprint therefore implies same result bytes, so serving a hit is
indistinguishable from recomputing.  The service only ever stores summaries
computed from the byte-exact submitted config (retries reuse the same
config; they never mutate the seed), which is what keeps the implication
true.

Entries are one gzip-JSON file per fingerprint, written atomically
(tmp + fsync + ``os.replace``, the snapshot-codec idiom) and carrying a
SHA-256 checksum over the canonical summary JSON.  A corrupt or truncated
entry — a crashed write the atomic rename should prevent, or a chaos
campaign flipping bytes — fails validation and is treated as a miss and
removed, never served.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
import zlib
from pathlib import Path
from typing import Any

from repro.reports.summary import RunSummary
from repro.snapshot.codec import canonical_json

__all__ = ["ResultCache"]

_MAGIC = "repro.service.result"
#: Bump on incompatible layout changes; readers treat other versions as
#: misses (recompute is always sound, serving a misread entry never is).
CACHE_SCHEMA = 1


def _summary_checksum(summary_record: dict[str, Any]) -> str:
    return hashlib.sha256(
        canonical_json(summary_record).encode("utf-8")
    ).hexdigest()


class ResultCache:
    """Directory of ``<fingerprint>.json.gz`` result entries."""

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)
        #: Entries that failed validation and were dropped (chaos oracle:
        #: corruption is *detected*, never served).
        self.corrupt_dropped = 0

    def path_for(self, fingerprint: str) -> Path:
        return self.root / f"{fingerprint}.json.gz"

    def __contains__(self, fingerprint: str) -> bool:
        return self.get(fingerprint) is not None

    def get(self, fingerprint: str) -> RunSummary | None:
        """The cached summary for *fingerprint*, or ``None`` on miss.

        Any validation failure — unreadable gzip, wrong magic/schema,
        checksum mismatch, a record the summary class refuses — drops the
        entry and reports a miss.
        """
        path = self.path_for(fingerprint)
        try:
            raw = gzip.decompress(path.read_bytes())
            payload = json.loads(raw.decode("utf-8"))
            if not isinstance(payload, dict):
                raise ValueError("cache entry is not a JSON object")
            if payload.get("magic") != _MAGIC:
                raise ValueError("not a service cache entry")
            if payload.get("schema") != CACHE_SCHEMA:
                raise ValueError(f"unknown schema {payload.get('schema')!r}")
            if payload.get("fingerprint") != fingerprint:
                raise ValueError("entry fingerprint does not match its key")
            record = payload["summary"]
            if payload.get("checksum") != _summary_checksum(record):
                raise ValueError("checksum mismatch")
            return RunSummary.from_record(record)
        except FileNotFoundError:
            return None
        except (OSError, EOFError, ValueError, KeyError, TypeError, zlib.error):
            self.corrupt_dropped += 1
            try:
                path.unlink(missing_ok=True)
            except OSError:
                # Removal is best-effort hygiene; validation already
                # guarantees the entry can never be served.
                self.corrupt_dropped += 0
            return None

    def put(self, fingerprint: str, summary: RunSummary) -> Path:
        """Atomically write *summary* under *fingerprint*.

        The payload is canonical JSON, so two writes of the same summary
        produce byte-identical files — the chaos campaign's byte-stability
        oracle compares exactly these bytes.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        record = summary.record()
        payload = {
            "magic": _MAGIC,
            "schema": CACHE_SCHEMA,
            "fingerprint": fingerprint,
            "checksum": _summary_checksum(record),
            "summary": record,
        }
        blob = gzip.compress(
            canonical_json(payload).encode("utf-8"), mtime=0
        )
        path = self.path_for(fingerprint)
        tmp = path.with_name(path.name + ".tmp")
        with tmp.open("wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        return path

    def get_bytes(self, fingerprint: str) -> bytes | None:
        """Raw entry bytes (byte-identity assertions in tests/oracles)."""
        try:
            return self.path_for(fingerprint).read_bytes()
        except OSError:
            return None

    def fingerprints(self) -> list[str]:
        """Fingerprints with an entry file present (unvalidated), sorted."""
        if not self.root.is_dir():
            return []
        return sorted(
            p.name[: -len(".json.gz")]
            for p in self.root.glob("*.json.gz")
        )
