"""The resilient scenario service: submit configs, survive anything.

:class:`ScenarioService` glues the journal (:mod:`repro.service.store`),
the fingerprint result cache (:mod:`repro.service.cache`), the bounded
admission queue (:mod:`repro.service.queue`) and the worker supervisor
(:mod:`repro.service.supervisor`) into one crash-tolerant job service:

* ``submit(config)`` → a :class:`Ticket`: served from cache immediately,
  coalesced onto an identical in-flight job, queued, or rejected with an
  explicit ``retry_after`` (backpressure);
* ``step()`` / ``drain()`` pump the pipeline: dispatch queued jobs to the
  supervisor, harvest outcomes, write results through cache + journal;
* constructing a service on an existing root **recovers**: the journal is
  replayed, jobs that were ``running`` or ``queued`` at the crash are
  requeued (bypassing admission — accepted work is never shed by a
  restart), and jobs whose result reached the cache before the crash are
  completed as cache hits instead of recomputed.

Write ordering gives exactly-once completion: a result is written to the
cache *before* the journal's ``done`` line, so a crash between the two
replays as "requeue, then hit the cache" — never as a second computation.

**Graceful degradation**: the cache path never touches the worker pool, so
a saturated or dead pool (``supervisor.healthy == False``) still serves
every duplicate-fingerprint submission; only fresh computations are
rejected.  See docs/service.md for the full semantics.
"""

from __future__ import annotations

import json
import time
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError
from repro.experiments.checkpoint import config_fingerprint
from repro.experiments.scenario import ScenarioConfig
from repro.reports.summary import FailedRun, RunSummary
from repro.service.cache import ResultCache
from repro.service.queue import SHED_DISPLACED, AdmissionQueue
from repro.service.store import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobRecord,
    JobStore,
)
from repro.service.supervisor import JobOutcome, WorkerSupervisor
from repro.snapshot.capture import encode_config
from repro.snapshot.restore import decode_config

__all__ = ["ScenarioService", "ServiceStats", "Ticket"]

#: Ticket statuses a submission can come back with.
STATUS_DONE = "done"  # served from cache, already terminal
STATUS_QUEUED = "queued"  # accepted, will run
STATUS_COALESCED = "coalesced"  # identical fingerprint already in flight
STATUS_REJECTED = "rejected"  # backpressure: retry after the hint


@dataclass(frozen=True)
class Ticket:
    """What a client gets back from one ``submit`` call."""

    job_id: str
    fingerprint: str
    status: str
    #: True when the result came straight from the fingerprint cache.
    cached: bool = False
    #: Backpressure hint (seconds) for a rejected submission.
    retry_after: float | None = None

    @property
    def accepted(self) -> bool:
        return self.status != STATUS_REJECTED


@dataclass
class ServiceStats:
    """Monotone counters; nothing is ever dropped without one ticking."""

    submitted: int = 0
    accepted: int = 0
    rejected: int = 0
    shed: int = 0
    coalesced: int = 0
    cache_hits: int = 0
    #: Cache hits served while the worker pool was saturated or dead.
    degraded_hits: int = 0
    computed: int = 0
    failed: int = 0
    recovered: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(vars(self))


class ScenarioService:
    """A supervised, crash-tolerant scenario-execution service."""

    def __init__(
        self,
        root: str | Path,
        *,
        workers: int = 0,
        queue_capacity: int = 64,
        timeout: float | None = None,
        max_attempts: int = 2,
        seed: int = 0,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        run_fn: Callable[[ScenarioConfig], RunSummary | FailedRun] | None = None,
        clock: Callable[[], float] | None = None,
        sleep: Callable[[float], None] | None = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.store = JobStore(self.root / "journal.jsonl")
        self.cache = ResultCache(self.root / "cache")
        self.queue = AdmissionQueue(queue_capacity)
        self.supervisor = WorkerSupervisor(
            workers,
            run_fn=run_fn,
            timeout=timeout,
            max_attempts=max_attempts,
            seed=seed,
            backoff_base=backoff_base,
            backoff_cap=backoff_cap,
            quarantine_dir=self.root / "quarantine",
            clock=clock,
        )
        self.stats = ServiceStats()
        # The only sanctioned ad-hoc wait in the repo outside the sweep
        # engine (reprolint REP010); injectable so tests never sleep.
        self._sleep = sleep if sleep is not None else time.sleep
        #: fingerprint -> job_id for every non-terminal job (coalescing).
        self._open_by_fp: dict[str, str] = {}
        self._recover()

    # -- recovery ----------------------------------------------------------

    def _recover(self) -> None:
        """Replay the journal: requeue interrupted work, index open jobs."""
        for job in self.store.jobs():
            if job.terminal:
                continue
            if job.state == RUNNING:
                # Crashed mid-run: the journal is authoritative, put it
                # back.  Attempts are preserved so a poison job cannot
                # dodge quarantine by crashing the whole service.
                self.store.record_queued(
                    job.job_id,
                    job.fingerprint,
                    attempts=job.attempts,
                )
                self.stats.recovered += 1
            elif job.state == QUEUED:
                self.stats.recovered += 1
            # Accepted-before-crash work bypasses admission control:
            # recovery must never shed or reject it.
            self.queue.force(
                job.job_id, priority=job.priority, seq=job.seq
            )
            self._open_by_fp[job.fingerprint] = job.job_id

    # -- submission --------------------------------------------------------

    def submit(self, config: ScenarioConfig, *, priority: int = 0) -> Ticket:
        """Offer one scenario; returns a :class:`Ticket`, never raises for
        load reasons (rejection is a ticket, not an exception)."""
        self.stats.submitted += 1
        fingerprint = config_fingerprint(config)

        # 1. Cache first: hits bypass admission control and the pool
        #    entirely, which is exactly what keeps degraded mode useful.
        hit = self.cache.get(fingerprint)
        if hit is not None:
            self.stats.cache_hits += 1
            if not self.supervisor.has_capacity():
                self.stats.degraded_hits += 1
            job_id = self._new_job_id(fingerprint)
            self.store.record_queued(
                job_id,
                fingerprint,
                priority=priority,
                config=None,  # result already cached; config not needed
            )
            self.store.record_done(job_id, cache_hit=True)
            self.stats.accepted += 1
            return Ticket(
                job_id=job_id,
                fingerprint=fingerprint,
                status=STATUS_DONE,
                cached=True,
            )

        # 2. Identical fingerprint already queued/running: coalesce.  The
        #    duplicate rides the in-flight computation — duplicate
        #    fingerprints never recompute (chaos oracle).
        open_job = self._open_by_fp.get(fingerprint)
        if open_job is not None and not self._is_terminal(open_job):
            self.stats.coalesced += 1
            return Ticket(
                job_id=open_job,
                fingerprint=fingerprint,
                status=STATUS_COALESCED,
            )

        # 3. Admission control: bounded queue, shed-or-reject when full.
        decision = self.queue.offer(
            self._peek_job_id(fingerprint),
            priority=priority,
            seq=self.store.next_seq(),
        )
        if not decision.admitted:
            self.stats.rejected += 1
            return Ticket(
                job_id="",
                fingerprint=fingerprint,
                status=STATUS_REJECTED,
                retry_after=decision.retry_after,
            )
        if decision.displaced is not None:
            shed = self.store.record_shed(
                decision.displaced, reason=SHED_DISPLACED
            )
            self._open_by_fp.pop(shed.fingerprint, None)
            self.stats.shed += 1
        job_id = self._new_job_id(fingerprint)
        self.store.record_queued(
            job_id,
            fingerprint,
            priority=priority,
            config=encode_config(config),
        )
        self._open_by_fp[fingerprint] = job_id
        self.stats.accepted += 1
        return Ticket(
            job_id=job_id, fingerprint=fingerprint, status=STATUS_QUEUED
        )

    def _peek_job_id(self, fingerprint: str) -> str:
        return f"job-{self.store.next_seq():06d}-{fingerprint[:12]}"

    def _new_job_id(self, fingerprint: str) -> str:
        return self._peek_job_id(fingerprint)

    def _is_terminal(self, job_id: str) -> bool:
        job = self.store.get(job_id)
        return job is None or job.terminal

    # -- pumping -----------------------------------------------------------

    def step(self) -> int:
        """One pump cycle: dispatch, harvest, settle.  Returns the number
        of jobs that reached a terminal state this cycle."""
        self._dispatch()
        settled = 0
        for outcome in self.supervisor.poll():
            self._settle(outcome.job_id, outcome)
            settled += 1
        return settled

    def _dispatch(self) -> None:
        while self.supervisor.has_capacity():
            job_id = self.queue.pop()
            if job_id is None:
                return
            job = self.store.get(job_id)
            if job is None or job.terminal:
                continue  # shed after queueing, or stale recovery entry
            # A result may have landed since this job was queued (a crash
            # between cache-write and journal-done, or a coalesced twin
            # finished first): serve it, never recompute.
            hit = self.cache.get(job.fingerprint)
            if hit is not None:
                self.store.record_done(job_id, cache_hit=True)
                self._open_by_fp.pop(job.fingerprint, None)
                self.stats.cache_hits += 1
                continue
            if job.config is None:
                self.store.record_failed(
                    job_id,
                    error_type="MissingConfig",
                    error_message=(
                        "journal lost this job's config payload; "
                        "resubmit the scenario"
                    ),
                    attempts=job.attempts,
                )
                self._open_by_fp.pop(job.fingerprint, None)
                self.stats.failed += 1
                continue
            config = decode_config(job.config)
            if config.snapshot_every > 0 and config.snapshot_to is None:
                # Mid-run resume for long jobs, the sweep engine's idiom:
                # the job rolls a snapshot keyed by its fingerprint under
                # the service root; run_scenario_safe resumes from a valid
                # one and removes it on success.  snapshot_to is execution
                # plumbing — the submit-time fingerprint (the cache key)
                # was taken before this mutation, like the sweep's.
                config = config.replace(
                    snapshot_to=str(
                        self.root / "snap" / f"{job.fingerprint}.snap.gz"
                    )
                )
            self.store.record_running(job_id, attempts=job.attempts + 1)
            self.supervisor.submit(job_id, config, attempts=job.attempts)

    def _settle(self, job_id: str, outcome: JobOutcome) -> None:
        job = self.store.get(job_id)
        if job is None or job.terminal:
            return
        result = outcome.result
        if isinstance(result, RunSummary):
            # Cache BEFORE journal: a crash between the two replays as a
            # requeue that hits the cache — exactly-once completion.
            self.cache.put(job.fingerprint, result)
            self.store.record_done(job_id, cache_hit=False)
            self.stats.computed += 1
        else:
            self.store.record_failed(
                job_id,
                error_type=result.error_type,
                error_message=result.error_message,
                attempts=outcome.attempts,
                quarantine=outcome.quarantine,
            )
            self.stats.failed += 1
        self._open_by_fp.pop(job.fingerprint, None)

    def drain(
        self,
        *,
        poll_interval: float = 0.02,
        max_wall: float | None = None,
    ) -> bool:
        """Pump until every accepted job is terminal.

        Returns True when fully drained; False when *max_wall* seconds of
        wall time elapsed first (the caller decides what to do with the
        remainder — state is durable either way).
        """
        start = time.perf_counter()
        while True:
            settled = self.step()
            if not self.open_jobs() and self.supervisor.pending() == 0:
                return True
            if (
                max_wall is not None
                and time.perf_counter() - start > max_wall
            ):
                return False
            if settled == 0:
                self._sleep(poll_interval)

    # -- queries -----------------------------------------------------------

    def open_jobs(self) -> list[JobRecord]:
        return self.store.open_jobs()

    def status(self, job_id: str) -> JobRecord:
        job = self.store.get(job_id)
        if job is None:
            raise ConfigurationError(f"unknown job {job_id}")
        return job

    def result(self, job_id: str) -> RunSummary | FailedRun | None:
        """The job's result: a summary for ``done`` (from the cache), a
        :class:`FailedRun` reconstructed from the journal for ``failed``,
        ``None`` while the job is still open or was shed/cancelled."""
        job = self.status(job_id)
        if job.state == DONE:
            return self.cache.get(job.fingerprint)
        if job.state == FAILED:
            return FailedRun(
                scenario="",
                policy="",
                seed=0,
                error_type=job.error_type,
                error_message=job.error_message,
                attempts=job.attempts,
            )
        return None

    def report(self) -> dict[str, Any]:
        """One JSON-safe document describing the whole service state."""
        return {
            "root": str(self.root),
            "counts": self.store.counts(),
            "jobs": [
                {
                    "job_id": j.job_id,
                    "state": j.state,
                    "fingerprint": j.fingerprint,
                    "priority": j.priority,
                    "attempts": j.attempts,
                    "cache_hit": j.cache_hit,
                    "shed_reason": j.shed_reason,
                    "error_type": j.error_type,
                }
                for j in self.store.jobs()
            ],
            "stats": self.stats.as_dict(),
            "supervisor": self.supervisor.stats.as_dict(),
            "cache": {
                "entries": len(self.cache.fingerprints()),
                "corrupt_dropped": self.cache.corrupt_dropped,
            },
            "queue": {
                "depth": len(self.queue),
                "capacity": self.queue.capacity,
            },
            "degraded": not self.supervisor.healthy,
        }

    def write_report(self, path: str | Path | None = None) -> Path:
        target = Path(path) if path is not None else self.root / "report.json"
        target.write_text(
            json.dumps(self.report(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return target

    def close(self) -> None:
        self.supervisor.shutdown()

    def __enter__(self) -> "ScenarioService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
