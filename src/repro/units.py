"""Unit helpers.

The simulator works internally in SI base units:

* time: **seconds** (float)
* distance: **meters** (float)
* data size: **bytes** (int)
* bandwidth: **bytes per second** (float)

The paper specifies parameters in mixed units (minutes, MB, kbps); these
helpers make scenario definitions read like Table II / Table III of the paper.
The ONE simulator treats "250 Kbps" transmit speed as 250 *kilobytes* per
second in its default settings idiom, but the paper means kilobits; we expose
both spellings explicitly so scenarios are unambiguous.
"""

from __future__ import annotations

#: Bytes in a kibibyte/mebibyte (buffer and message sizes use MB = 2**20
#: following ONE's convention of byte-exact buffer accounting).
KIB = 1024
MIB = 1024 * 1024


def minutes(value: float) -> float:
    """Convert minutes to seconds."""
    return float(value) * 60.0


def hours(value: float) -> float:
    """Convert hours to seconds."""
    return float(value) * 3600.0


def megabytes(value: float) -> int:
    """Convert mebibytes to bytes (rounded to the nearest byte)."""
    return int(round(float(value) * MIB))


def kilobytes(value: float) -> int:
    """Convert kibibytes to bytes (rounded to the nearest byte)."""
    return int(round(float(value) * KIB))


def kbps(value: float) -> float:
    """Convert kilobits per second to bytes per second."""
    return float(value) * 1000.0 / 8.0


def mbps(value: float) -> float:
    """Convert megabits per second to bytes per second."""
    return float(value) * 1_000_000.0 / 8.0


def kBps(value: float) -> float:
    """Convert kilobytes (1000 B) per second to bytes per second."""
    return float(value) * 1000.0


#: Default tolerance for sim-time comparisons: far below any simulated
#: interval (ticks are O(1 s), transfer times O(10 s)) yet far above the
#: accumulated rounding error of summing horizon-scale float intervals.
TIME_EPS = 1e-6


def time_eq(a: float, b: float, eps: float = TIME_EPS) -> bool:
    """True when two simulation timestamps are equal within *eps* seconds.

    Simulation times are sums of float intervals, so two logically
    simultaneous timestamps can differ in the last bits once they went
    through different arithmetic.  Exact ``==``/``!=`` on sim-time floats is
    banned in library code (reprolint REP003); use this helper or an
    ordering comparison instead.
    """
    return abs(a - b) <= eps


def fmt_bytes(n: int) -> str:
    """Human-readable byte count (e.g. ``"2.50MB"``)."""
    if n >= MIB:
        return f"{n / MIB:.2f}MB"
    if n >= KIB:
        return f"{n / KIB:.2f}KB"
    return f"{n}B"


def fmt_duration(seconds: float) -> str:
    """Human-readable duration (e.g. ``"2h30m"``, ``"45.0s"``)."""
    if seconds >= 3600:
        h, rem = divmod(seconds, 3600)
        return f"{int(h)}h{int(rem // 60)}m"
    if seconds >= 60:
        m, s = divmod(seconds, 60)
        return f"{int(m)}m{s:.0f}s"
    return f"{seconds:.1f}s"
