"""World model: nodes, radios, connectivity and the time-stepped update.

The :class:`repro.world.world.World` advances the mobility substrate at a
fixed tick, detects link changes with a pluggable
:class:`~repro.world.contacts.ContactDetector`, purges expired messages, and
publishes ``link.up`` / ``link.down`` / ``world.updated`` events that drive
the routing layer.
"""

from repro.world.contacts import (
    BruteForceDetector,
    ContactDetector,
    GridDetector,
    KDTreeDetector,
    make_detector,
)
from repro.world.node import Node
from repro.world.radio import Radio
from repro.world.trace_world import TraceWorld
from repro.world.world import World

__all__ = [
    "BruteForceDetector",
    "ContactDetector",
    "GridDetector",
    "KDTreeDetector",
    "Node",
    "Radio",
    "TraceWorld",
    "World",
    "make_detector",
]
