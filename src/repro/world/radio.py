"""Radio interface model.

Matches the paper's setup: a fixed transmission range (link exists whenever
two nodes are within the smaller of their ranges) and a fixed transmit speed.
A transfer between two nodes runs at the slower of the two radios.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Radio:
    """Radio parameters for one node.

    Parameters
    ----------
    range_m:
        Transmission range in meters (paper: 100 m).
    bandwidth_Bps:
        Transmit speed in bytes/second (paper: 250 kbit/s = 31 250 B/s).
    """

    range_m: float
    bandwidth_Bps: float

    def __post_init__(self) -> None:
        if self.range_m <= 0:
            raise ConfigurationError(f"radio range must be positive: {self.range_m}")
        if self.bandwidth_Bps <= 0:
            raise ConfigurationError(
                f"radio bandwidth must be positive: {self.bandwidth_Bps}"
            )

    def link_bandwidth(self, other: "Radio") -> float:
        """Effective transfer bandwidth to a peer radio (the slower side)."""
        return min(self.bandwidth_Bps, other.bandwidth_Bps)

    def transfer_time(self, size_bytes: int, other: "Radio") -> float:
        """Seconds needed to push *size_bytes* to a peer radio."""
        return size_bytes / self.link_bandwidth(other)
