"""A network node: buffer + radio + router + live neighbor set.

Positions are owned by the :class:`~repro.world.world.World` (vectorized
mobility), not by the node, so the node object stays cheap; ``node.position``
reads back the world's current array row for convenience.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.net.buffer import MessageBuffer
from repro.world.radio import Radio

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.routing.base import Router
    from repro.world.world import World


class Node:
    """One DTN node."""

    def __init__(self, node_id: int, radio: Radio, buffer_capacity: int) -> None:
        self.id = int(node_id)
        self.radio = radio
        self.buffer = MessageBuffer(buffer_capacity)
        self.router: "Router | None" = None
        #: Currently connected peers, keyed by node id.
        self.neighbors: dict[int, "Node"] = {}
        #: True while this node's interface is busy sending one message.
        self.sending = False
        self._world: "World | None" = None

    def attach_router(self, router: "Router") -> None:
        """Wire the routing protocol driving this node."""
        self.router = router

    def attach_world(self, world: "World") -> None:
        """Called by the world when the node is registered."""
        self._world = world

    @property
    def position(self) -> np.ndarray:
        """Current (x, y) in meters; requires world registration."""
        if self._world is None:
            raise RuntimeError(f"node {self.id} is not attached to a world")
        return self._world.positions[self.id]

    def is_connected_to(self, other: "Node") -> bool:
        """True while a live link to *other* exists."""
        return other.id in self.neighbors

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Node {self.id} buf={len(self.buffer)} "
            f"nbrs={sorted(self.neighbors)}>"
        )
