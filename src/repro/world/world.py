"""The world: time-stepped movement + connectivity, event-driven messaging.

Each tick (default 1 s, matching the granularity ONE uses for the paper's
scenarios) the world advances the mobility model, recomputes the link set
with the contact detector, fires ``link.down`` (aborting in-flight
transfers) and ``link.up`` events, purges expired messages, and gives idle
routers a chance to start transfers.
"""

from __future__ import annotations

import numpy as np

from repro.engine.events import PRIORITY_WORLD
from repro.engine.simulator import Simulator
from repro.errors import ConfigurationError
from repro.mobility.base import MobilityModel
from repro.net.transfer import TransferManager
from repro.obs.profiler import timed
from repro.world.contacts import ContactDetector, make_detector
from repro.world.node import Node


class World:
    """Owns nodes, positions and the link set."""

    def __init__(
        self,
        sim: Simulator,
        mobility: MobilityModel,
        nodes: list[Node],
        transfer_manager: TransferManager,
        detector: ContactDetector | None = None,
        tick: float = 1.0,
    ) -> None:
        if len(nodes) != mobility.n_nodes:
            raise ConfigurationError(
                f"{len(nodes)} nodes but mobility drives {mobility.n_nodes}"
            )
        if tick <= 0:
            raise ConfigurationError(f"tick must be positive: {tick}")
        if sorted(n.id for n in nodes) != list(range(len(nodes))):
            raise ConfigurationError("node ids must be 0..N-1 (dense)")
        self.sim = sim
        self.mobility = mobility
        self.nodes = sorted(nodes, key=lambda n: n.id)
        self.transfer_manager = transfer_manager
        self.detector = detector or make_detector(len(nodes))
        self.tick = float(tick)
        self.links: set[tuple[int, int]] = set()
        #: Nodes currently offline (fault injection); they hold no links and
        #: the detector's candidate pairs touching them are discarded.
        self.down_nodes: set[int] = set()
        self.positions = np.zeros((len(nodes), 2))
        self._ranges = np.array([n.radio.range_m for n in self.nodes])
        self._max_range = float(self._ranges.max())
        self._uniform_range = bool(np.all(self._ranges == self._ranges[0]))
        for node in self.nodes:
            node.attach_world(self)

    def start(self, rng: np.random.Generator) -> None:
        """Initialize mobility and register the recurring update event."""
        self.mobility.initialize(rng)
        self.positions = self.mobility.advance(0.0)
        self.sim.schedule_every(
            self.tick, self.update, priority=PRIORITY_WORLD, start=self.sim.now,
            name="world.update",
        )

    # -- the tick ----------------------------------------------------------

    def update(self) -> None:
        """One world step: move, rewire links, purge TTLs, kick senders."""
        now = self.sim.now
        profiler = self.sim.profiler
        with timed(profiler, "movement"):
            self.positions = self.mobility.advance(now)
        with timed(profiler, "contacts"):
            new_links = self._detect_pairs()
            if not self._uniform_range:
                new_links = self._filter_heterogeneous(new_links)
            if self.down_nodes:
                new_links = {
                    (i, j)
                    for i, j in new_links
                    if i not in self.down_nodes and j not in self.down_nodes
                }

        with timed(profiler, "links"):
            # Sorted so teardown order is a function of the pair ids alone,
            # never of set memory layout — keeps snapshot/restore runs
            # byte-identical to uninterrupted ones (link.up already sorts).
            for i, j in sorted(self.links - new_links):
                self._link_down(self.nodes[i], self.nodes[j])
            for i, j in sorted(new_links - self.links):
                self._link_up(self.nodes[i], self.nodes[j])
            self.links = new_links

        self._routing_phase(now)

    def _detect_pairs(self) -> set[tuple[int, int]]:
        """Candidate contact pairs at the current positions.

        Subclass hook: the sharded world answers this from its worker
        fleet instead of the in-process detector.  Range-heterogeneity
        and down-node filtering stay in :meth:`update` so every backend
        applies them identically to the merged set.
        """
        return self.detector.pairs(self.positions, self._max_range)

    def close(self) -> None:
        """Release external resources held by the world (subclass hook)."""

    def _routing_phase(self, now: float) -> None:
        """TTL purge, observer notification, idle-sender retries.

        Shared tail of the tick, identical for every engine backend (the
        vector world overrides :meth:`update` but runs this unchanged).
        """
        profiler = self.sim.profiler
        with timed(profiler, "routing"):
            for node in self.nodes:
                if node.router is not None:
                    node.router.purge_expired()
        with timed(profiler, "observers"):
            self.sim.listeners.emit("world.updated", now)
        # Idle senders retry: new eligibility can appear without a link
        # event (e.g. a neighbor dropped its copy of a message we hold).
        with timed(profiler, "routing"):
            for node in self.nodes:
                if node.router is not None and not node.sending and node.neighbors:
                    node.router.try_send()

    def _filter_heterogeneous(
        self, pairs: set[tuple[int, int]]
    ) -> set[tuple[int, int]]:
        """Keep pairs within the *smaller* of the two nodes' radio ranges."""
        keep: set[tuple[int, int]] = set()
        for i, j in pairs:
            limit = min(self._ranges[i], self._ranges[j])
            diff = self.positions[i] - self.positions[j]
            if float(diff @ diff) <= limit * limit:
                keep.add((i, j))
        return keep

    # -- link transitions ---------------------------------------------------

    def _link_up(self, a: Node, b: Node) -> None:
        a.neighbors[b.id] = b
        b.neighbors[a.id] = a
        self.sim.listeners.emit("link.up", a, b)
        if a.router is not None:
            a.router.on_link_up(b)
        if b.router is not None:
            b.router.on_link_up(a)

    def _link_down(self, a: Node, b: Node) -> None:
        # Neighbor sets first: the aborted sender immediately retries other
        # links and must not re-select the one that just died.
        a.neighbors.pop(b.id, None)
        b.neighbors.pop(a.id, None)
        self.transfer_manager.abort_for_link(a, b)
        self.sim.listeners.emit("link.down", a, b)
        if a.router is not None:
            a.router.on_link_down(b)
        if b.router is not None:
            b.router.on_link_down(a)

    # -- fault hooks -------------------------------------------------------

    def set_node_down(self, node_id: int) -> None:
        """Take a node offline: tear down all its links (aborting in-flight
        transfers) and keep it unlinkable until :meth:`set_node_up`."""
        if node_id in self.down_nodes:
            return
        self.down_nodes.add(node_id)
        for i, j in sorted(pair for pair in self.links if node_id in pair):
            self.links.discard((i, j))
            self._link_down(self.nodes[i], self.nodes[j])

    def set_node_up(self, node_id: int) -> None:
        """Bring a node back online; links re-form on the next tick."""
        self.down_nodes.discard(node_id)

    def force_link_down(self, i: int, j: int) -> bool:
        """Drop the (i, j) link now (fault injection).  Returns True if the
        link existed.  If both nodes stay in range it re-forms next tick."""
        key = (min(i, j), max(i, j))
        if key not in self.links:
            return False
        self.links.discard(key)
        self._link_down(self.nodes[key[0]], self.nodes[key[1]])
        return True

    # -- convenience -------------------------------------------------------

    def node(self, node_id: int) -> Node:
        """Node by id."""
        return self.nodes[node_id]

    def connected_pairs(self) -> set[tuple[int, int]]:
        """Current link set as (i, j) with i < j."""
        return set(self.links)
