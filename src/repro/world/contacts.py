"""Contact (link) detection strategies.

Given an ``(N, 2)`` position array and a detection radius, a detector returns
the set of node index pairs ``(i, j), i < j`` within the radius.  Three
interchangeable implementations are provided; ``make_detector`` picks a
sensible default by fleet size.  The brute-force detector is fully
NumPy-vectorized and is the fastest for the paper's fleet sizes (N <= ~500);
the grid and KD-tree detectors scale to large fleets (micro-benchmarked in
``benchmarks/test_bench_contacts.py``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from functools import lru_cache

import numpy as np
from scipy.spatial import cKDTree

from repro.errors import ConfigurationError

PairSet = set[tuple[int, int]]


# Local twin of repro.vector.kernels.triu_pairs: importing it here would
# cycle (repro.vector -> vector.world -> world.contacts), so the cache is
# duplicated rather than shared.
@lru_cache(maxsize=8)
def _triu_pairs(n: int) -> tuple[np.ndarray, np.ndarray]:
    iu, ju = np.triu_indices(n, k=1)
    return iu.astype(np.int64), ju.astype(np.int64)


class ContactDetector(ABC):
    """Strategy interface for range queries over node positions."""

    @abstractmethod
    def pairs(self, positions: np.ndarray, radius: float) -> PairSet:
        """Return all pairs ``(i, j), i < j`` with distance <= *radius*."""

    @staticmethod
    def _check(positions: np.ndarray, radius: float) -> None:
        if radius <= 0:
            raise ConfigurationError(f"radius must be positive: {radius}")
        if positions.ndim != 2 or positions.shape[1] != 2:
            raise ConfigurationError(
                f"positions must have shape (N, 2), got {positions.shape}"
            )


class BruteForceDetector(ContactDetector):
    """O(N^2) vectorized pairwise distances — fastest for small fleets.

    Works on the upper triangle only: each of the N(N-1)/2 pairs is
    computed once, with the same ``positions[i] - positions[j]`` (i < j)
    float sequence as before the dedupe, so detections — including exact
    radius-boundary ties — are unchanged while the full N x N broadcast
    (twice the work plus an N^2 masking pass) is gone.
    """

    def pairs(self, positions: np.ndarray, radius: float) -> PairSet:
        self._check(positions, radius)
        n = positions.shape[0]
        if n < 2:
            return set()
        iu, ju = _triu_pairs(n)
        diff = positions[iu] - positions[ju]
        d2 = np.einsum("ij,ij->i", diff, diff)
        close = d2 <= radius * radius
        return {
            (int(i), int(j)) for i, j in zip(iu[close], ju[close])
        }


class GridDetector(ContactDetector):
    """Uniform spatial hashing with cell size = radius.

    Each node is binned into a cell; only the 3x3 cell neighborhood is
    checked, making detection ~O(N) for fleets spread over an area much
    larger than the radius (the paper's scenarios qualify).
    """

    #: Forward half of the 8-neighborhood; scanning only these (plus the
    #: cell itself) visits every adjacent cell pair exactly once.
    _FORWARD = ((1, 0), (1, 1), (0, 1), (-1, 1))

    def pairs(self, positions: np.ndarray, radius: float) -> PairSet:
        self._check(positions, radius)
        n = positions.shape[0]
        if n < 2:
            return set()
        cells = np.floor(positions / radius).astype(np.int64)
        buckets: dict[tuple[int, int], list[int]] = {}
        for idx in range(n):
            buckets.setdefault((int(cells[idx, 0]), int(cells[idx, 1])), []).append(idx)

        cand_a: list[int] = []
        cand_b: list[int] = []
        for (cx, cy), members in buckets.items():
            for a_pos, a in enumerate(members):
                for b in members[a_pos + 1 :]:
                    cand_a.append(a)
                    cand_b.append(b)
            for dx, dy in self._FORWARD:
                other = buckets.get((cx + dx, cy + dy))
                if not other:
                    continue
                for a in members:
                    for b in other:
                        cand_a.append(a)
                        cand_b.append(b)
        if not cand_a:
            return set()
        ia = np.asarray(cand_a, dtype=np.int64)
        ib = np.asarray(cand_b, dtype=np.int64)
        diff = positions[ia] - positions[ib]
        close = np.einsum("ij,ij->i", diff, diff) <= radius * radius
        return {
            (int(i), int(j)) if i < j else (int(j), int(i))
            for i, j in zip(ia[close], ib[close])
        }


class KDTreeDetector(ContactDetector):
    """scipy ``cKDTree.query_pairs`` — best asymptotics for huge fleets."""

    def pairs(self, positions: np.ndarray, radius: float) -> PairSet:
        self._check(positions, radius)
        if positions.shape[0] < 2:
            return set()
        tree = cKDTree(positions)
        return {
            (int(i), int(j)) for i, j in tree.query_pairs(radius, output_type="ndarray")
        }


def make_detector(n_nodes: int, kind: str | None = None) -> ContactDetector:
    """Pick a detector: explicit *kind* or a size-based default.

    ``kind`` may be ``"brute"``, ``"grid"`` or ``"kdtree"``.
    """
    if kind is None:
        kind = "brute" if n_nodes <= 512 else "kdtree"
    table = {
        "brute": BruteForceDetector,
        "grid": GridDetector,
        "kdtree": KDTreeDetector,
    }
    try:
        return table[kind]()
    except KeyError:
        raise ConfigurationError(
            f"unknown detector kind {kind!r}; expected one of {sorted(table)}"
        ) from None
