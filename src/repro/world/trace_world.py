"""Contact-trace-driven world: replay connectivity without mobility.

Given a recorded :class:`~repro.traces.contact_trace.ContactTrace`, this
world schedules the exact same link transitions as events — no positions, no
detector.  Uses:

* **regression**: a run replayed from its own recorded trace produces
  byte-identical message metrics (tested in
  ``tests/world/test_trace_world.py``);
* **real contact datasets**: many DTN traces are published as contact lists
  rather than GPS logs; this is the entry point for them;
* **speed**: replay skips the mobility + detection cost entirely.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.engine.events import PRIORITY_WORLD
from repro.engine.simulator import Simulator
from repro.errors import ConfigurationError
from repro.net.transfer import TransferManager
from repro.world.node import Node

if TYPE_CHECKING:  # pragma: no cover - breaks the traces<->world import cycle
    from repro.traces.contact_trace import ContactTrace


class TraceWorld:
    """Link lifecycle driven by a contact trace instead of movement."""

    def __init__(
        self,
        sim: Simulator,
        nodes: list[Node],
        transfer_manager: TransferManager,
        trace: ContactTrace,
        tick: float = 1.0,
    ) -> None:
        if sorted(n.id for n in nodes) != list(range(len(nodes))):
            raise ConfigurationError("node ids must be 0..N-1 (dense)")
        if tick <= 0:
            raise ConfigurationError(f"tick must be positive: {tick}")
        max_id = max((max(e.a, e.b) for e in trace.events), default=-1)
        if max_id >= len(nodes):
            raise ConfigurationError(
                f"trace references node {max_id}, only {len(nodes)} nodes"
            )
        self.sim = sim
        self.nodes = sorted(nodes, key=lambda n: n.id)
        self.transfer_manager = transfer_manager
        self.trace = trace
        self.tick = float(tick)
        self.links: set[tuple[int, int]] = set()
        #: Nodes currently offline (fault injection).  Trace ``up`` events
        #: touching a down node are discarded; after a rejoin, connectivity
        #: resumes at the next recorded contact.
        self.down_nodes: set[int] = set()

    def start(self) -> None:
        """Schedule every trace event plus the recurring maintenance tick."""
        for event in self.trace.events:
            if event.time > self.sim.end_time:
                break
            self.sim.schedule_at(
                event.time,
                self._apply,
                event.a,
                event.b,
                event.up,
                priority=PRIORITY_WORLD,
            )
        self.sim.schedule_every(self.tick, self._maintain, priority=PRIORITY_WORLD)

    # -- event application ---------------------------------------------------

    def _apply(self, a_id: int, b_id: int, up: bool) -> None:
        a, b = self.nodes[a_id], self.nodes[b_id]
        key = (min(a_id, b_id), max(a_id, b_id))
        if up:
            if key in self.links:
                return  # idempotent against duplicate trace lines
            if a_id in self.down_nodes or b_id in self.down_nodes:
                return  # faulted node: the recorded contact never happens
            self.links.add(key)
            a.neighbors[b.id] = b
            b.neighbors[a.id] = a
            self.sim.listeners.emit("link.up", a, b)
            if a.router is not None:
                a.router.on_link_up(b)
            if b.router is not None:
                b.router.on_link_up(a)
        else:
            if key not in self.links:
                return
            self._drop_link(a, b)

    def _drop_link(self, a: Node, b: Node) -> None:
        self.links.discard((min(a.id, b.id), max(a.id, b.id)))
        a.neighbors.pop(b.id, None)
        b.neighbors.pop(a.id, None)
        self.transfer_manager.abort_for_link(a, b)
        self.sim.listeners.emit("link.down", a, b)
        if a.router is not None:
            a.router.on_link_down(b)
        if b.router is not None:
            b.router.on_link_down(a)

    # -- fault hooks ---------------------------------------------------------

    def set_node_down(self, node_id: int) -> None:
        """Take a node offline: tear down its links and discard its trace
        contacts until :meth:`set_node_up`."""
        if node_id in self.down_nodes:
            return
        self.down_nodes.add(node_id)
        # Sorted so teardown order is a function of the pair ids alone,
        # never of set memory layout (matches World.set_node_down).
        for i, j in sorted(pair for pair in self.links if node_id in pair):
            self._drop_link(self.nodes[i], self.nodes[j])

    def set_node_up(self, node_id: int) -> None:
        """Bring a node back online (connectivity resumes at the next
        recorded contact)."""
        self.down_nodes.discard(node_id)

    def force_link_down(self, i: int, j: int) -> bool:
        """Drop the (i, j) link now.  Returns True if the link existed.
        It re-forms only at the trace's next ``up`` event for the pair."""
        key = (min(i, j), max(i, j))
        if key not in self.links:
            return False
        self._drop_link(self.nodes[key[0]], self.nodes[key[1]])
        return True

    def _maintain(self) -> None:
        """TTL purge + idle-sender retry (the tick half of World.update)."""
        for node in self.nodes:
            if node.router is not None:
                node.router.purge_expired()
        self.sim.listeners.emit("world.updated", self.sim.now)
        for node in self.nodes:
            if node.router is not None and not node.sending and node.neighbors:
                node.router.try_send()
