"""EPFL/CRAWDAD ``cabspotting`` support.

The paper's real-world scenario replays GPS logs of San Francisco taxis
("epfl/mobility", 30 days; the paper uses the first 200 taxis over the
first 18000 s).  Two paths are provided:

* :func:`load_cabspotting_dir` — parse a locally available copy of the real
  dataset (one ``new_<cab>.txt`` file per taxi, lines
  ``<latitude> <longitude> <occupancy> <unix time>`` in *reverse*
  chronological order) into a playback mobility model.  The dataset itself
  is not redistributable, so it is not shipped here.
* :func:`synthetic_epfl` — the default offline substitute: a
  :class:`repro.mobility.taxi.TaxiFleet` with the statistical features the
  paper's reasoning relies on (see that module's docstring and DESIGN.md §1).
"""

from __future__ import annotations

import math
from pathlib import Path

import numpy as np

from repro.errors import TraceFormatError
from repro.mobility.taxi import TaxiFleet
from repro.mobility.trace import TraceMobility

#: Mean Earth radius (meters) for the equirectangular projection.
_EARTH_RADIUS = 6_371_000.0


def parse_cabspotting_file(path: str | Path) -> tuple[np.ndarray, np.ndarray]:
    """Parse one cab file into (times, (k, 2) lat/lon), oldest first."""
    path = Path(path)
    times: list[float] = []
    coords: list[tuple[float, float]] = []
    try:
        text = path.read_text(encoding="utf-8")
    except UnicodeDecodeError as exc:
        raise TraceFormatError(f"{path}: not UTF-8 text ({exc})") from None
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 4:
            raise TraceFormatError(f"{path}:{lineno}: expected 4 fields")
        try:
            lat, lon = float(parts[0]), float(parts[1])
            t = float(parts[3])
        except ValueError as exc:
            raise TraceFormatError(f"{path}:{lineno}: {exc}") from None
        times.append(t)
        coords.append((lat, lon))
    if not times:
        raise TraceFormatError(f"{path}: empty cab file")
    t_arr = np.asarray(times)
    c_arr = np.asarray(coords)
    order = np.argsort(t_arr, kind="stable")  # files are newest-first
    return t_arr[order], c_arr[order]


def _project(latlon: np.ndarray, lat0: float, lon0: float) -> np.ndarray:
    """Equirectangular lat/lon -> local meters around (lat0, lon0)."""
    lat = np.radians(latlon[:, 0])
    lon = np.radians(latlon[:, 1])
    x = (lon - math.radians(lon0)) * math.cos(math.radians(lat0)) * _EARTH_RADIUS
    y = (lat - math.radians(lat0)) * _EARTH_RADIUS
    return np.stack([x, y], axis=1)


def load_cabspotting_dir(
    directory: str | Path,
    n_taxis: int = 200,
    duration: float = 18000.0,
    grid_step: float = 30.0,
) -> TraceMobility:
    """Build playback mobility from a cabspotting dataset directory.

    Takes the first *n_taxis* cab files (sorted by name, matching the
    paper's "first 200 taxis"), clips to the first *duration* seconds after
    the earliest common timestamp, and projects GPS to local meters with the
    south-west corner at the origin.
    """
    directory = Path(directory)
    files = sorted(directory.glob("new_*.txt"))[:n_taxis]
    if not files:
        raise TraceFormatError(f"no cabspotting files (new_*.txt) in {directory}")
    raw = [parse_cabspotting_file(f) for f in files]
    t_start = min(float(t[0]) for t, _ in raw)
    all_coords = np.concatenate([c for _, c in raw])
    lat0 = float(all_coords[:, 0].mean())
    lon0 = float(all_coords[:, 1].mean())
    node_samples = []
    for t, c in raw:
        rel_t = t - t_start
        keep = rel_t <= duration
        if not keep.any():  # cab silent in the window: park it at first fix
            rel_t, c = rel_t[:1] * 0.0, c[:1]
        else:
            rel_t, c = rel_t[keep], c[keep]
        node_samples.append((rel_t, _project(c, lat0, lon0)))
    mobility = TraceMobility.from_node_samples(
        node_samples, grid_step=grid_step, duration=duration
    )
    # Shift coordinates to be non-negative (World/areas assume >= 0).
    offset = mobility._samples.reshape(-1, 2).min(axis=0)
    mobility._samples -= offset
    return mobility


def synthetic_epfl(n_taxis: int = 200, **kwargs: object) -> TaxiFleet:
    """The offline stand-in for the EPFL trace (see module docstring)."""
    return TaxiFleet(n_nodes=n_taxis, **kwargs)  # type: ignore[arg-type]
