"""Contact traces: record link up/down events, save/load, compute stats.

A contact trace abstracts mobility away entirely — useful for regression
tests (replay exactly the same connectivity) and for analyzing contact
processes (Fig. 3) without rerunning movement.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.engine.simulator import Simulator
from repro.errors import TraceFormatError
from repro.world.node import Node


@dataclass(frozen=True)
class ContactEvent:
    """One link transition."""

    time: float
    a: int
    b: int
    up: bool


class ContactTrace:
    """An ordered list of contact events."""

    def __init__(self, events: list[ContactEvent] | None = None) -> None:
        self.events: list[ContactEvent] = list(events or [])

    def append(self, event: ContactEvent) -> None:
        if self.events and event.time < self.events[-1].time:
            raise TraceFormatError(
                f"contact events must be time-ordered: {event.time} < "
                f"{self.events[-1].time}"
            )
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    # -- stats ---------------------------------------------------------------

    def intermeeting_samples(self) -> np.ndarray:
        """Per-pair gaps between a down event and the next up event."""
        last_down: dict[tuple[int, int], float] = {}
        gaps: list[float] = []
        for ev in self.events:
            key = (ev.a, ev.b) if ev.a <= ev.b else (ev.b, ev.a)
            if ev.up:
                down = last_down.pop(key, None)
                if down is not None and ev.time > down:
                    gaps.append(ev.time - down)
            else:
                last_down[key] = ev.time
        return np.asarray(gaps, dtype=float)

    def contact_durations(self) -> np.ndarray:
        """Per-pair durations between an up event and the next down event."""
        last_up: dict[tuple[int, int], float] = {}
        durations: list[float] = []
        for ev in self.events:
            key = (ev.a, ev.b) if ev.a <= ev.b else (ev.b, ev.a)
            if ev.up:
                last_up[key] = ev.time
            else:
                up = last_up.pop(key, None)
                if up is not None:
                    durations.append(ev.time - up)
        return np.asarray(durations, dtype=float)

    # -- I/O -----------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write as ``time a b CONN up|down`` lines (ONE report style)."""
        with Path(path).open("w") as fh:
            for ev in self.events:
                state = "up" if ev.up else "down"
                fh.write(f"{ev.time:.3f} {ev.a} {ev.b} CONN {state}\n")

    @classmethod
    def load(cls, path: str | Path) -> "ContactTrace":
        """Parse a file produced by :meth:`save`."""
        trace = cls()
        path = Path(path)
        with path.open() as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.split()
                if len(parts) != 5 or parts[3] != "CONN":
                    raise TraceFormatError(f"{path}:{lineno}: bad line {line!r}")
                try:
                    t, a, b = float(parts[0]), int(parts[1]), int(parts[2])
                except ValueError as exc:
                    raise TraceFormatError(f"{path}:{lineno}: {exc}") from None
                if parts[4] not in ("up", "down"):
                    raise TraceFormatError(f"{path}:{lineno}: bad state {parts[4]!r}")
                trace.append(ContactEvent(t, a, b, parts[4] == "up"))
        return trace


class ContactTraceRecorder:
    """Listener that records a :class:`ContactTrace` during a run."""

    def __init__(self) -> None:
        self.trace = ContactTrace()
        self._now = lambda: 0.0

    def subscribe(self, sim: Simulator) -> None:
        self._now = lambda: sim.now
        sim.listeners.subscribe("link.up", self._on_up)
        sim.listeners.subscribe("link.down", self._on_down)

    def _on_up(self, a: Node, b: Node) -> None:
        self.trace.append(ContactEvent(self._now(), a.id, b.id, True))

    def _on_down(self, a: Node, b: Node) -> None:
        self.trace.append(ContactEvent(self._now(), a.id, b.id, False))
