"""Movement-trace text format (ONE ``ExternalMovement`` style).

Line format::

    <time> <node_id> <x> <y>

with one header line ``minTime maxTime minX maxX minY maxY`` (ONE's
convention).  Times must come in non-decreasing order.  The reader returns a
:class:`repro.mobility.trace.TraceMobility`, so recorded or externally
produced movement drops straight into the simulator.
"""

from __future__ import annotations

from pathlib import Path
from typing import TextIO

import numpy as np

from repro.errors import TraceFormatError
from repro.mobility.trace import TraceMobility


def write_movement_trace(
    path: str | Path,
    times: np.ndarray,
    positions: np.ndarray,
) -> None:
    """Write a (T,) x (T, N, 2) sampled movement to *path*."""
    times = np.asarray(times, dtype=float)
    positions = np.asarray(positions, dtype=float)
    if positions.ndim != 3 or positions.shape[0] != times.size:
        raise TraceFormatError(
            f"positions {positions.shape} inconsistent with times {times.shape}"
        )
    path = Path(path)
    with path.open("w") as fh:
        fh.write(
            f"{times[0]:.3f} {times[-1]:.3f} "
            f"{positions[..., 0].min():.3f} {positions[..., 0].max():.3f} "
            f"{positions[..., 1].min():.3f} {positions[..., 1].max():.3f}\n"
        )
        for t_idx, t in enumerate(times):
            for node in range(positions.shape[1]):
                x, y = positions[t_idx, node]
                fh.write(f"{t:.3f} {node} {x:.3f} {y:.3f}\n")


def _parse_lines(fh: TextIO, path: Path) -> tuple[np.ndarray, np.ndarray]:
    header = fh.readline().split()
    if len(header) != 6:
        raise TraceFormatError(f"{path}: expected 6-field header, got {header!r}")
    samples: dict[float, dict[int, tuple[float, float]]] = {}
    node_ids: set[int] = set()
    for lineno, line in enumerate(fh, start=2):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 4:
            raise TraceFormatError(f"{path}:{lineno}: expected 4 fields: {line!r}")
        try:
            t, node, x, y = float(parts[0]), int(parts[1]), float(parts[2]), float(parts[3])
        except ValueError as exc:
            raise TraceFormatError(f"{path}:{lineno}: {exc}") from None
        samples.setdefault(t, {})[node] = (x, y)
        node_ids.add(node)
    if not samples:
        raise TraceFormatError(f"{path}: no samples")
    if sorted(node_ids) != list(range(len(node_ids))):
        raise TraceFormatError(f"{path}: node ids must be dense 0..N-1")
    times = np.array(sorted(samples), dtype=float)
    n = len(node_ids)
    positions = np.empty((times.size, n, 2))
    last_known: dict[int, tuple[float, float]] = {}
    for t_idx, t in enumerate(times):
        row = samples[t]
        for node in range(n):
            if node in row:
                last_known[node] = row[node]
            if node not in last_known:
                raise TraceFormatError(
                    f"{path}: node {node} has no sample at or before t={t}"
                )
            positions[t_idx, node] = last_known[node]
    return times, positions


def read_movement_trace(path: str | Path) -> TraceMobility:
    """Parse a movement trace file into a playback mobility model."""
    path = Path(path)
    with path.open() as fh:
        times, positions = _parse_lines(fh, path)
    if times.size < 2:
        raise TraceFormatError(f"{path}: need at least 2 time samples")
    return TraceMobility(times, positions)
