"""Trace I/O: movement traces, contact traces, and the EPFL loader."""

from repro.traces.contact_trace import ContactEvent, ContactTrace, ContactTraceRecorder
from repro.traces.epfl import load_cabspotting_dir, parse_cabspotting_file, synthetic_epfl
from repro.traces.format import read_movement_trace, write_movement_trace

__all__ = [
    "ContactEvent",
    "ContactTrace",
    "ContactTraceRecorder",
    "load_cabspotting_dir",
    "parse_cabspotting_file",
    "read_movement_trace",
    "synthetic_epfl",
    "write_movement_trace",
]
