"""Deterministic process-pool map with failure containment.

Results come back in input order regardless of completion order, and every
work item carries its own seed (see :func:`repro.rng.derive_seed`), so a
parallel sweep is bit-identical to a serial one — verified in
``tests/parallel/test_pool.py``.

The pool always uses the ``spawn`` start method so sweeps behave identically
across Linux (fork default) and macOS/Windows (spawn default): workers never
inherit lazily-initialized parent state, and fork-unsafe extensions cannot
corrupt a sweep.

Resilience hooks (all optional, used by the crash-safe sweep path in
:mod:`repro.experiments.sweep`):

* ``timeout`` — seconds each item may run once the caller starts waiting on
  it; a hung worker is abandoned (the pool is rebuilt for the remaining
  items) instead of stalling the whole map;
* ``on_error`` — called with ``(item, exception)`` for timeouts, dead
  workers (:class:`BrokenProcessPool`) and raised exceptions; its return
  value takes the item's slot in the result list.  Without it, failures
  raise (:class:`~repro.errors.SweepInterrupted` for timeouts/worker death);
* ``on_result`` — called with ``(index, result)`` as each item resolves, in
  input order — the checkpoint writer hook.
"""

from __future__ import annotations

import multiprocessing
import os
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import TypeVar

from repro.errors import SweepInterrupted

T = TypeVar("T")
R = TypeVar("R")


def default_workers() -> int:
    """A sensible worker count: physical parallelism minus one, min 1."""
    return max(1, (os.cpu_count() or 2) - 1)


def _pool_context() -> multiprocessing.context.BaseContext:
    """The explicit start method used for every worker pool."""
    return multiprocessing.get_context("spawn")


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: int | None = None,
    chunksize: int = 1,
    timeout: float | None = None,
    on_error: Callable[[T, BaseException], R] | None = None,
    on_result: Callable[[int, R], None] | None = None,
) -> list[R]:
    """Apply *fn* to *items*, optionally across processes.

    ``workers=None`` picks :func:`default_workers`; ``workers <= 1`` runs
    serially in-process (no pool overhead, easier debugging, identical
    results).  *fn* and the items must be picklable for the parallel path
    (the pool uses the ``spawn`` start method on every platform).
    """
    if workers is None:
        workers = default_workers()
    if workers <= 1 or len(items) <= 1:
        return _serial_map(fn, items, on_error, on_result)
    if timeout is None and on_error is None and on_result is None:
        # Fast path: chunked pool.map amortizes IPC for many small items.
        with ProcessPoolExecutor(
            max_workers=min(workers, len(items)), mp_context=_pool_context()
        ) as pool:
            return list(pool.map(fn, items, chunksize=chunksize))
    return _resilient_map(fn, items, workers, timeout, on_error, on_result)


def _serial_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    on_error: Callable[[T, BaseException], R] | None,
    on_result: Callable[[int, R], None] | None,
) -> list[R]:
    results: list[R] = []
    for i, item in enumerate(items):
        try:
            result = fn(item)
        except Exception as exc:
            if on_error is None:
                raise
            result = on_error(item, exc)
        results.append(result)
        if on_result is not None:
            on_result(i, result)
    return results


def _resilient_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: int,
    timeout: float | None,
    on_error: Callable[[T, BaseException], R] | None,
    on_result: Callable[[int, R], None] | None,
) -> list[R]:
    """Submit-based map that survives hung and dying workers.

    Items are awaited in input order; a timeout or a broken pool marks the
    offending item failed and restarts a fresh pool for the items after it
    (completed futures keep their results).  An abandoned hung worker keeps
    running detached until process exit — that is the price of not blocking
    a multi-hour sweep on one pathological item.
    """
    results: dict[int, R] = {}

    def settle(index: int, result: R) -> None:
        results[index] = result
        if on_result is not None:
            on_result(index, result)

    pending = list(range(len(items)))
    while pending:
        pool = ProcessPoolExecutor(
            max_workers=min(workers, len(pending)), mp_context=_pool_context()
        )
        rebuild_from: int | None = None
        try:
            futures = {i: pool.submit(fn, items[i]) for i in pending}
            for pos, i in enumerate(pending):
                try:
                    settle(i, futures[i].result(timeout=timeout))
                except FutureTimeoutError as exc:
                    futures[i].cancel()
                    if on_error is None:
                        raise SweepInterrupted(
                            f"item {i} exceeded the {timeout}s timeout"
                        ) from exc
                    settle(i, on_error(items[i], exc))
                    rebuild_from = pos + 1
                    break
                except BrokenProcessPool as exc:
                    if on_error is None:
                        raise SweepInterrupted(
                            f"worker died while running item {i}"
                        ) from exc
                    settle(i, on_error(items[i], exc))
                    rebuild_from = pos + 1
                    break
                except Exception as exc:
                    if on_error is None:
                        raise
                    settle(i, on_error(items[i], exc))
        finally:
            # wait=False: a hung worker must not block the sweep; the pool's
            # processes are reaped when they finish or at interpreter exit.
            pool.shutdown(wait=False, cancel_futures=True)
        if rebuild_from is None:
            pending = []
            continue
        # Harvest what the dying pool already finished.  Work that
        # completed before the failure point must not be recomputed on the
        # fresh pool — recomputation is wasted wall-clock and re-runs the
        # item's side effects (snapshot and checkpoint writes).  Only the
        # contiguous run after the failure is harvestable: on_result is
        # documented to fire in input order, so a completed item beyond a
        # still-unfinished gap cannot settle yet and is resubmitted.
        tail = pending[rebuild_from:]
        harvested = 0
        for j in tail:
            fut = futures[j]
            if fut.cancelled() or not fut.done() or fut.exception() is not None:
                break
            settle(j, fut.result())
            harvested += 1
        pending = tail[harvested:]
    return [results[i] for i in range(len(items))]
