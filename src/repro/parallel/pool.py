"""Deterministic process-pool map.

Results come back in input order regardless of completion order, and every
work item carries its own seed (see :func:`repro.rng.derive_seed`), so a
parallel sweep is bit-identical to a serial one — verified in
``tests/parallel/test_pool.py``.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import TypeVar

T = TypeVar("T")
R = TypeVar("R")


def default_workers() -> int:
    """A sensible worker count: physical parallelism minus one, min 1."""
    return max(1, (os.cpu_count() or 2) - 1)


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: int | None = None,
    chunksize: int = 1,
) -> list[R]:
    """Apply *fn* to *items*, optionally across processes.

    ``workers=None`` picks :func:`default_workers`; ``workers <= 1`` runs
    serially in-process (no pool overhead, easier debugging, identical
    results).  *fn* and the items must be picklable for the parallel path.
    """
    if workers is None:
        workers = default_workers()
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(workers, len(items))) as pool:
        return list(pool.map(fn, items, chunksize=chunksize))
