"""Parallel execution utilities for parameter sweeps."""

from repro.parallel.pool import parallel_map
from repro.parallel.partition import chunk_evenly, chunk_sized

__all__ = ["chunk_evenly", "chunk_sized", "parallel_map"]
