"""Parallel execution utilities for parameter sweeps."""

from repro.parallel.pool import parallel_map
from repro.parallel.partition import (
    chunk_evenly,
    chunk_exact,
    chunk_sized,
    stripe_spans,
)

__all__ = [
    "chunk_evenly",
    "chunk_exact",
    "chunk_sized",
    "parallel_map",
    "stripe_spans",
]
