"""Work-partitioning helpers.

Simulation runs have high variance in duration (congested runs are slower),
so the sweep engine hands the pool small chunks for dynamic load balancing;
these helpers are also used by tests that verify ordering guarantees.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TypeVar

from repro.errors import ConfigurationError

T = TypeVar("T")


def chunk_sized(items: Sequence[T], size: int) -> list[list[T]]:
    """Split *items* into consecutive chunks of at most *size*."""
    if size < 1:
        raise ConfigurationError(f"chunk size must be >= 1: {size}")
    return [list(items[i : i + size]) for i in range(0, len(items), size)]


def chunk_evenly(items: Sequence[T], parts: int) -> list[list[T]]:
    """Split *items* into *parts* contiguous chunks whose sizes differ by <= 1.

    Empty trailing chunks are dropped, so fewer than *parts* lists may be
    returned when there are fewer items than parts.  Do NOT pair the result
    positionally against a fixed-length id list (``zip(ids, chunks)`` silently
    truncates when ``parts > len(items)``) — use :func:`chunk_exact` when the
    consumer owns exactly *parts* slots.
    """
    return [chunk for chunk in chunk_exact(items, parts) if chunk]


def chunk_exact(items: Sequence[T], parts: int) -> list[list[T]]:
    """Split *items* into exactly *parts* contiguous chunks (some may be
    empty when ``parts > len(items)``); sizes differ by <= 1.

    Safe to zip against a *parts*-long id list: position ``i`` of the result
    always exists and is chunk ``i``'s (possibly empty) work share.
    """
    if parts < 1:
        raise ConfigurationError(f"parts must be >= 1: {parts}")
    n = len(items)
    base, extra = divmod(n, parts)
    out: list[list[T]] = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        out.append(list(items[start : start + size]))
        start += size
    return out


def stripe_spans(total: float, parts: int) -> list[tuple[float, float]]:
    """Partition ``[0, total)`` into *parts* contiguous half-open spans.

    The spatial analogue of :func:`chunk_exact`: exactly *parts* spans are
    returned, span ``i`` is ``[i * total / parts, (i + 1) * total / parts)``
    and the last span's upper bound is exactly *total* (no float-accumulation
    gap).  Used by the shard engine to assign map stripes to workers.
    """
    if parts < 1:
        raise ConfigurationError(f"parts must be >= 1: {parts}")
    if total <= 0:
        raise ConfigurationError(f"total must be positive: {total}")
    edges = [total * i / parts for i in range(parts)] + [float(total)]
    return [(edges[i], edges[i + 1]) for i in range(parts)]
