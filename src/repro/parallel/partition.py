"""Work-partitioning helpers.

Simulation runs have high variance in duration (congested runs are slower),
so the sweep engine hands the pool small chunks for dynamic load balancing;
these helpers are also used by tests that verify ordering guarantees.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TypeVar

from repro.errors import ConfigurationError

T = TypeVar("T")


def chunk_sized(items: Sequence[T], size: int) -> list[list[T]]:
    """Split *items* into consecutive chunks of at most *size*."""
    if size < 1:
        raise ConfigurationError(f"chunk size must be >= 1: {size}")
    return [list(items[i : i + size]) for i in range(0, len(items), size)]


def chunk_evenly(items: Sequence[T], parts: int) -> list[list[T]]:
    """Split *items* into *parts* contiguous chunks whose sizes differ by <= 1.

    Empty trailing chunks are dropped, so fewer than *parts* lists may be
    returned when there are fewer items than parts.
    """
    if parts < 1:
        raise ConfigurationError(f"parts must be >= 1: {parts}")
    n = len(items)
    base, extra = divmod(n, parts)
    out: list[list[T]] = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        if size == 0:
            break
        out.append(list(items[start : start + size]))
        start += size
    return out
