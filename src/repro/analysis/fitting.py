"""Exponential-distribution fitting for intermeeting times (paper Fig. 3).

The paper verifies that intermeeting times "approximately follow an
exponential distribution" under both scenarios and derives λ = 1/E(I).  We
fit by maximum likelihood (the sample mean) and report a Kolmogorov-Smirnov
statistic quantifying "approximately".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ExponentialFit:
    """MLE exponential fit plus goodness-of-fit."""

    mean: float  # E(I)
    rate: float  # λ = 1/E(I)
    n_samples: int
    ks_statistic: float
    ks_pvalue: float

    def pdf(self, x: np.ndarray) -> np.ndarray:
        """Fitted density λ e^{-λx}."""
        x = np.asarray(x, dtype=float)
        return self.rate * np.exp(-self.rate * np.clip(x, 0.0, None))

    def survival(self, x: np.ndarray) -> np.ndarray:
        """Fitted CCDF e^{-λx}."""
        x = np.asarray(x, dtype=float)
        return np.exp(-self.rate * np.clip(x, 0.0, None))


def fit_exponential(samples: np.ndarray) -> ExponentialFit:
    """Fit an exponential distribution to positive *samples* by MLE."""
    samples = np.asarray(samples, dtype=float)
    samples = samples[np.isfinite(samples)]
    if samples.size < 2:
        raise ConfigurationError(
            f"need at least 2 finite samples, got {samples.size}"
        )
    if np.any(samples <= 0):
        raise ConfigurationError("intermeeting samples must be positive")
    mean = float(samples.mean())
    ks = stats.kstest(samples, "expon", args=(0.0, mean))
    return ExponentialFit(
        mean=mean,
        rate=1.0 / mean,
        n_samples=int(samples.size),
        ks_statistic=float(ks.statistic),
        ks_pvalue=float(ks.pvalue),
    )


def histogram_pdf(
    samples: np.ndarray, bins: int = 30
) -> tuple[np.ndarray, np.ndarray]:
    """(bin centers, empirical density) — the bars of Fig. 3."""
    samples = np.asarray(samples, dtype=float)
    if samples.size == 0:
        raise ConfigurationError("no samples to histogram")
    density, edges = np.histogram(samples, bins=bins, density=True)
    centers = 0.5 * (edges[:-1] + edges[1:])
    return centers, density
