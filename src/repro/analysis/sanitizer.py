"""Runtime invariant sanitizer.

The static layer (``tools/reprolint``) catches determinism and style bugs in
the source; this module catches *state* corruption while a simulation runs.
A :class:`Sanitizer` subscribes to the simulator's listener registry and
re-validates the structural invariants of the message plane on every world
tick:

* **buffer accounting** — each node's ``MessageBuffer.used`` equals the sum
  of its stored message sizes, and never exceeds the capacity;
* **pin hygiene** — every pinned id refers to a message actually stored in
  that buffer (a dangling pin makes bytes undroppable forever);
* **TTL monotonicity** — a copy's remaining TTL never *increases* between
  ticks for the same (node, message) pair;
* **spray-token conservation** — for token-splitting routers, the global sum
  of ``Message.copies`` over all live copies of a logical message never
  exceeds ``initial_copies`` and never increases tick-over-tick (binary
  splits conserve tokens; drops only destroy them);
* **single commit** — the two-phase transfer protocol commits each
  transfer's token halving at most once (``transfer.commit`` with a repeated
  :attr:`~repro.net.transfer.Transfer.seq` is a protocol bug).

Violations raise :class:`~repro.errors.InvariantViolation` naming the
invariant, the node, the message and the simulation time, so a corrupted run
dies at the first bad tick instead of producing silently skewed figures.

Checks are O(total buffered messages) per tick — cheap enough for CI smoke
runs (``make sanitize-smoke``), too slow for large sweeps; enable explicitly
via ``Simulator(sanitize=True)``, ``ScenarioConfig(sanitize=True)``,
``repro-exp run --sanitize`` or ``REPRO_SANITIZE=1``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import InvariantViolation
from repro.units import TIME_EPS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.simulator import Simulator
    from repro.net.transfer import Transfer
    from repro.world.node import Node

#: Remaining-TTL slack: two ticks reading the same copy must not see the
#: remaining TTL grow by more than float noise.
_TTL_EPS = TIME_EPS


class Sanitizer:
    """Per-tick structural validation of the simulation's message plane.

    Parameters
    ----------
    nodes:
        The fleet to watch.
    check_copies:
        Enable the spray-token conservation check.  Only meaningful for
        token-splitting routers ("snw", "snf"): vanilla source-spray and
        epidemic forwarding clone full token counts by design, which this
        invariant would (correctly, but uselessly) reject.
    """

    def __init__(self, nodes: list[Node], check_copies: bool = True) -> None:
        self.nodes = nodes
        self.check_copies = bool(check_copies)
        #: Ticks validated so far (diagnostics; lets smoke tests assert the
        #: sanitizer actually ran rather than silently doing nothing).
        self.ticks_checked = 0
        # remaining-TTL floor per (node_id, msg_id), pruned as copies vanish.
        self._ttl_seen: dict[tuple[int, str], float] = {}
        # live token-sum ceiling per msg_id (starts at initial_copies and
        # ratchets down as drops destroy tokens).
        self._copy_budget: dict[str, int] = {}
        self._committed_seqs: set[int] = set()

    # -- wiring ------------------------------------------------------------

    def subscribe(self, sim: Simulator) -> None:
        """Attach to *sim*'s listener registry."""
        sim.listeners.subscribe("world.updated", self.check_tick)
        sim.listeners.subscribe("transfer.commit", self.on_commit)

    # -- event handlers ----------------------------------------------------

    def on_commit(self, transfer: Transfer) -> None:
        """Reject a second commit of the same transfer's token halving."""
        if transfer.seq in self._committed_seqs:
            raise InvariantViolation(
                "single-commit",
                f"transfer seq={transfer.seq} "
                f"({transfer.sender.id}->{transfer.receiver.id}) "
                "committed twice",
                node_id=transfer.sender.id,
                msg_id=transfer.message.msg_id,
            )
        self._committed_seqs.add(transfer.seq)

    # -- the per-tick sweep -------------------------------------------------

    def check_tick(self, now: float) -> None:
        """Validate every invariant against the current fleet state."""
        live_keys: set[tuple[int, str]] = set()
        copy_sums: dict[str, int] = {}
        initial: dict[str, int] = {}

        for node in self.nodes:
            buf = node.buffer
            stored = buf.messages()

            recomputed = sum(m.size for m in stored)
            if recomputed != buf.used:
                raise InvariantViolation(
                    "buffer-accounting",
                    f"used={buf.used}B but stored messages sum to "
                    f"{recomputed}B",
                    node_id=node.id,
                    time=now,
                )
            if buf.used > buf.capacity:
                raise InvariantViolation(
                    "buffer-capacity",
                    f"used={buf.used}B exceeds capacity={buf.capacity}B",
                    node_id=node.id,
                    time=now,
                )

            stored_ids = {m.msg_id for m in stored}
            for pinned in buf.pinned_ids():
                if pinned not in stored_ids:
                    raise InvariantViolation(
                        "pin-hygiene",
                        "pinned id not stored in buffer (leaked pin)",
                        node_id=node.id,
                        msg_id=pinned,
                        time=now,
                    )

            for m in stored:
                key = (node.id, m.msg_id)
                live_keys.add(key)
                remaining = m.remaining_ttl(now)
                floor = self._ttl_seen.get(key)
                if floor is not None and remaining > floor + _TTL_EPS:
                    raise InvariantViolation(
                        "ttl-monotonic",
                        f"remaining TTL rose from {floor:.6f}s to "
                        f"{remaining:.6f}s",
                        node_id=node.id,
                        msg_id=m.msg_id,
                        time=now,
                    )
                self._ttl_seen[key] = remaining
                copy_sums[m.msg_id] = copy_sums.get(m.msg_id, 0) + m.copies
                initial[m.msg_id] = m.initial_copies

        # Prune state for copies that left every buffer this tick.
        for key in [k for k in self._ttl_seen if k not in live_keys]:
            del self._ttl_seen[key]

        if self.check_copies:
            self._check_copy_conservation(copy_sums, initial, now)

        self.ticks_checked += 1

    def _check_copy_conservation(
        self, copy_sums: dict[str, int], initial: dict[str, int], now: float
    ) -> None:
        for msg_id, total in copy_sums.items():
            budget = self._copy_budget.get(msg_id, initial[msg_id])
            if total > budget:
                raise InvariantViolation(
                    "copy-conservation",
                    f"live spray tokens sum to {total} but at most {budget} "
                    f"may exist (initial={initial[msg_id]})",
                    msg_id=msg_id,
                    time=now,
                )
            # Ratchet: drops destroy tokens; splits conserve them.  A later
            # tick showing more tokens than any earlier tick is corruption.
            self._copy_budget[msg_id] = total
        for msg_id in [m for m in self._copy_budget if m not in copy_sums]:
            del self._copy_budget[msg_id]
