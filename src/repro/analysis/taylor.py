r"""Priority-curve analysis (paper Fig. 4).

Fig. 4 plots :math:`U_i` against :math:`P(R_i)` for fixed :math:`P(T_i)`
and :math:`n_i`: the idealization (Eq. 11) peaks at
:math:`P(R_i) = 1 - 1/e`, and the Eq. 13 Taylor truncations approach it as
the term count grows.  These helpers regenerate the curves and quantify the
truncation error.
"""

from __future__ import annotations

import numpy as np

from repro.core.priority import (
    PEAK_P_R,
    priority_from_probabilities,
    priority_taylor,
)
from repro.errors import ConfigurationError


def priority_curve(
    p_r: np.ndarray | None = None,
    p_t: float = 0.0,
    n_holders: float = 1.0,
    taylor_term_counts: tuple[int, ...] = (1, 2, 4, 8),
) -> dict[str, np.ndarray]:
    """Curves of Fig. 4: idealized U(P(R)) and its Taylor truncations.

    Returns a dict with ``p_r``, ``ideal`` and one ``taylor_k<K>`` array per
    requested truncation.
    """
    if p_r is None:
        p_r = np.linspace(0.0, 0.999, 400)
    p_r = np.asarray(p_r, dtype=float)
    out: dict[str, np.ndarray] = {
        "p_r": p_r,
        "ideal": priority_from_probabilities(p_t, p_r, n_holders),
    }
    for k in taylor_term_counts:
        out[f"taylor_k{k}"] = priority_taylor(p_t, p_r, n_holders, terms=k)
    return out


def peak_location(p_r: np.ndarray, values: np.ndarray) -> float:
    """P(R) at which a sampled curve is maximal (grid argmax)."""
    p_r = np.asarray(p_r, dtype=float)
    values = np.asarray(values, dtype=float)
    if p_r.shape != values.shape or p_r.size == 0:
        raise ConfigurationError("p_r and values must be equal-length, non-empty")
    return float(p_r[int(np.argmax(values))])


def taylor_convergence(
    max_terms: int = 32,
    p_t: float = 0.0,
    n_holders: float = 1.0,
    grid_points: int = 200,
) -> dict[int, float]:
    """Max absolute error of each truncation K against Eq. 11, K = 1..max.

    Demonstrates the paper's claim that "with the increase of the terms
    number k, the priority calculated by Eq. 13 gradually tends to be
    idealization" and quantifies the accuracy/compute trade-off.
    """
    if max_terms < 1:
        raise ConfigurationError(f"max_terms must be >= 1: {max_terms}")
    p_r = np.linspace(0.0, 0.99, grid_points)
    ideal = priority_from_probabilities(p_t, p_r, n_holders)
    errors: dict[int, float] = {}
    for k in range(1, max_terms + 1):
        approx = priority_taylor(p_t, p_r, n_holders, terms=k)
        errors[k] = float(np.max(np.abs(approx - ideal)))
    return errors


__all__ = ["PEAK_P_R", "peak_location", "priority_curve", "taylor_convergence"]
