"""Shape comparison utilities — the reproduction contract, as code.

The reproduction checks *orderings and trends*, not absolute numbers (the
substrate is a reimplementation).  These helpers turn a
:class:`~repro.experiments.figures.FigureData` into the facts the paper's
prose asserts: who wins a metric, whether a curve rises or falls, and where
two curves cross.  The figure benchmarks build their assertions on them.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.errors import ConfigurationError


def policy_ranking(
    series: dict[str, Sequence[float]], prefer: str = "max"
) -> list[str]:
    """Policies ordered best-first by their mean over the sweep.

    NaN points are ignored; a policy with no finite points ranks last.
    """
    if prefer not in ("max", "min"):
        raise ConfigurationError(f"prefer must be max|min: {prefer!r}")

    def key(policy: str) -> float:
        values = [v for v in series[policy] if not math.isnan(v)]
        if not values:
            return -math.inf
        mean = sum(values) / len(values)
        return mean if prefer == "max" else -mean

    return sorted(series, key=key, reverse=True)


def trend_direction(values: Sequence[float], tolerance: float = 0.0) -> str:
    """Classify a sweep series: "rising", "falling", "flat" or "mixed".

    Based on the endpoints with a dead-band of *tolerance* for "flat";
    "mixed" means an interior excursion beyond the endpoint span (a bump or
    dip larger than the net movement plus tolerance).
    """
    finite = [v for v in values if not math.isnan(v)]
    if len(finite) < 2:
        raise ConfigurationError("need at least 2 finite points")
    first, last = finite[0], finite[-1]
    net = last - first
    lo, hi = min(finite), max(finite)
    excursion = (hi - max(first, last)) + (min(first, last) - lo)
    if excursion > abs(net) + tolerance:
        return "mixed"
    if abs(net) <= tolerance:
        return "flat"
    return "rising" if net > 0 else "falling"


def crossovers(
    x_values: Sequence[float],
    series_a: Sequence[float],
    series_b: Sequence[float],
) -> list[float]:
    """x positions where curve a crosses curve b (linear interpolation).

    Touch points (exact equality at a sample) are reported once.  The paper
    reports no crossover for SDSRP's overhead (it stays below everywhere) —
    an empty list is the expected answer there.
    """
    x = np.asarray(x_values, dtype=float)
    a = np.asarray(series_a, dtype=float)
    b = np.asarray(series_b, dtype=float)
    if not (x.shape == a.shape == b.shape):
        raise ConfigurationError("x and series must be equal length")
    diff = a - b
    out: list[float] = []
    for i in range(len(x) - 1):
        d0, d1 = diff[i], diff[i + 1]
        if math.isnan(d0) or math.isnan(d1):
            continue
        if d0 == 0.0:
            if not out or out[-1] != x[i]:
                out.append(float(x[i]))
        elif d0 * d1 < 0:
            t = d0 / (d0 - d1)
            out.append(float(x[i] + t * (x[i + 1] - x[i])))
    if len(diff) and diff[-1] == 0.0 and (not out or out[-1] != x[-1]):
        out.append(float(x[-1]))
    return out


def dominates(
    series_a: Sequence[float],
    series_b: Sequence[float],
    prefer: str = "max",
) -> bool:
    """True if a is at least as good as b at *every* sweep point.

    This is the strong version of "who wins": SDSRP's overhead claim holds
    in this sense; its delivery claim only holds on means (use
    :func:`policy_ranking` for that).
    """
    if prefer not in ("max", "min"):
        raise ConfigurationError(f"prefer must be max|min: {prefer!r}")
    for va, vb in zip(series_a, series_b, strict=True):
        if math.isnan(va) or math.isnan(vb):
            continue
        if prefer == "max" and va < vb:
            return False
        if prefer == "min" and va > vb:
            return False
    return True
