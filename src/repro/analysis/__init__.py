"""Analysis tools: distribution fitting (Fig. 3), priority curves (Fig. 4),
ordering/trend comparison (the reproduction contract as code), and the
runtime invariant sanitizer."""

from repro.analysis.sanitizer import Sanitizer
from repro.analysis.comparison import (
    crossovers,
    dominates,
    policy_ranking,
    trend_direction,
)
from repro.analysis.fitting import ExponentialFit, fit_exponential, histogram_pdf
from repro.analysis.taylor import (
    peak_location,
    priority_curve,
    taylor_convergence,
)

__all__ = [
    "ExponentialFit",
    "Sanitizer",
    "crossovers",
    "dominates",
    "policy_ranking",
    "trend_direction",
    "fit_exponential",
    "histogram_pdf",
    "peak_location",
    "priority_curve",
    "taylor_convergence",
]
