"""Deterministic random-number management.

Every stochastic component (mobility models, message generator, tie-breaking
in policies) draws from its own :class:`numpy.random.Generator`, spawned from
a single scenario seed via :func:`numpy.random.SeedSequence.spawn`.  This
gives two properties the experiment harness relies on:

* **Reproducibility** — the same scenario seed yields bit-identical runs.
* **Parallel safety** — sweep workers each receive independent, collision-free
  streams, so a parallel sweep produces exactly the same numbers as a serial
  one (tested in ``tests/parallel/test_pool.py``).
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any

import numpy as np


class RngFactory:
    """Spawns named, independent random generators from one root seed.

    Streams are keyed by name; asking for the same name twice returns
    generators with identical state sequences only if created in the same
    order, so components should each request exactly one stream at set-up.
    """

    def __init__(self, seed: int | np.random.SeedSequence = 0) -> None:
        if isinstance(seed, np.random.SeedSequence):
            self._root = seed
        else:
            self._root = np.random.SeedSequence(int(seed))
        self._spawned: dict[str, np.random.Generator] = {}

    @property
    def root_entropy(self) -> int:
        """The root entropy this factory was created with."""
        entropy = self._root.entropy
        if isinstance(entropy, (list, tuple)):
            return int(entropy[0])
        return int(entropy)  # type: ignore[arg-type]

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for *name*, creating it deterministically.

        The stream for a given (root seed, name) pair is always the same,
        independent of creation order, because the child seed is derived by
        hashing the *full* name into the spawn key.  (An earlier version
        keyed on the first 8 bytes only, which made ``"policy.random.1"``
        and ``"policy.random.2"`` collide into identical streams; node-
        scoped stream names rely on the full-name hash.)
        """
        if name not in self._spawned:
            # Derive a stable 64-bit key from the name so stream identity
            # does not depend on request order.  The root's own spawn_key is
            # preserved so children of spawn() stay mutually independent.
            key = _fnv1a(name.encode("utf-8"))
            child = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=(*self._root.spawn_key, key),
            )
            self._spawned[name] = np.random.default_rng(child)
        return self._spawned[name]

    def spawn(self, n: int) -> Iterator["RngFactory"]:
        """Spawn *n* independent child factories (for sweep workers)."""
        for seq in self._root.spawn(n):
            yield RngFactory(seq)

    # -- snapshot support --------------------------------------------------

    def state_dict(self) -> dict[str, Any]:
        """Capture every spawned stream's bit-generator state.

        The returned structure is JSON-serializable (PCG64 exposes its state
        as a nested dict of ints/strings) and is consumed by
        :meth:`restore_state` and :mod:`repro.snapshot`.
        """
        return {
            "streams": {
                name: gen.bit_generator.state
                for name, gen in self._spawned.items()
            }
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        """Restore stream states captured by :meth:`state_dict`.

        Streams are (re)created by name — :meth:`stream` derives them purely
        from (root seed, name) — then their bit-generator state is overwritten
        so subsequent draws continue exactly where the capture left off.
        Spawned streams not present in *state* are left untouched.
        """
        for name, bg_state in state["streams"].items():
            self.stream(name).bit_generator.state = bg_state


def _fnv1a(data: bytes) -> int:
    """64-bit FNV-1a hash (stable across platforms and Python versions)."""
    h = 0xCBF29CE484222325
    for byte in data:
        h = ((h ^ byte) * 0x100000001B3) % (1 << 64)
    return h


def derive_seed(base_seed: int, *components: int | str) -> int:
    """Derive a deterministic 63-bit seed from a base seed and labels.

    Used by the sweep engine so that (scenario, parameter point, replicate)
    always maps to the same seed regardless of execution order or worker
    placement.
    """
    acc = np.uint64(base_seed) ^ np.uint64(0x9E3779B97F4A7C15)
    for comp in components:
        if isinstance(comp, str):
            value = np.uint64(_fnv1a(comp.encode("utf-8")))
        else:
            value = np.uint64(int(comp) & 0xFFFFFFFFFFFFFFFF)
        acc = np.uint64(
            (int(acc) ^ int(value)) * 0x9E3779B97F4A7C15 % (1 << 64)
        )
        acc = np.uint64((int(acc) >> 29 ^ int(acc)) * 0xBF58476D1CE4E5B9 % (1 << 64))
    return int(acc) & 0x7FFFFFFFFFFFFFFF
