"""Time-series metrics: counters, gauges and histograms on a fixed cadence.

The paper's evaluation reasons about *trajectories* — how delivery ratio,
buffer occupancy and live copy counts evolve as the policies reshuffle
buffers — but :class:`~repro.reports.metrics.MetricsCollector` only reports
end-of-run aggregates.  :class:`TimeSeriesCollector` samples the fleet on a
configurable simulated-time interval and exports the series as JSON or CSV
(``repro-experiments run --obs-out metrics.json``).

Sampling rides the event queue at :data:`~repro.engine.events.PRIORITY_REPORT`
(after world/fault/normal events at the same instant), so a sample at time T
sees the state *after* everything that happened at T.  The collector is
observation-only: it mutates nothing and schedules only read-only callbacks,
so enabling it cannot change any simulation outcome (enforced by
``tests/obs/test_observation_only.py``).

Columns (one value per sample row; cumulative counters count from t=0):

=========================  ==================================================
``time``                   sample timestamp (sim seconds)
``created``                messages generated so far
``delivered``              unique messages delivered so far
``relayed``                completed transfers so far
``delivery_ratio``         delivered / created so far (0 before traffic)
``drop_<reason>``          drops so far, one column per ``DROP_REASONS``
``drops_total``            all drops so far
``buffer_used_bytes``      total bytes buffered fleet-wide (gauge)
``occupancy_mean``         mean per-node buffer occupancy in [0, 1] (gauge)
``occupancy_max``          max per-node buffer occupancy (gauge)
``live_messages``          distinct message ids buffered anywhere (gauge)
``live_copies``            sum of spray tokens over all buffered copies
``bytes_relayed``          payload bytes of completed transfers so far
``throughput_Bps``         bytes_relayed delta / interval since last sample
``transfers_started``      transfers started so far
``transfers_aborted``      transfers aborted so far
``faults_total``           injected faults so far
=========================  ==================================================
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.engine.events import PRIORITY_REPORT
from repro.errors import ConfigurationError, ObsFormatError
from repro.net.outcomes import DROP_REASONS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.simulator import Simulator
    from repro.net.message import Message
    from repro.net.transfer import Transfer
    from repro.world.node import Node

__all__ = ["Histogram", "TimeSeriesCollector", "read_timeseries_json"]

#: Default latency histogram bin edges (seconds): sub-minute .. multi-hour.
LATENCY_EDGES = (60.0, 300.0, 900.0, 1800.0, 3600.0, 7200.0, 14400.0)
#: Default transfer-duration histogram bin edges (seconds).
DURATION_EDGES = (1.0, 5.0, 10.0, 20.0, 40.0, 80.0)


class Histogram:
    """A fixed-bin counting histogram (no per-sample storage).

    ``edges = (e0, .., ek)`` produce k+2 bins: ``(-inf, e0], (e0, e1], ..,
    (ek, inf)``.  Values accumulate into :attr:`counts`; the edges are part
    of the exported payload so a parsed export is self-describing.
    """

    def __init__(self, edges: tuple[float, ...]) -> None:
        if not edges or list(edges) != sorted(edges):
            raise ConfigurationError(
                f"histogram edges must be non-empty and ascending: {edges}"
            )
        self.edges = tuple(float(e) for e in edges)
        self.counts = [0] * (len(self.edges) + 1)
        self.n = 0
        self.total = 0.0

    def add(self, value: float) -> None:
        """Count *value* into its bin."""
        self.n += 1
        self.total += value
        for i, edge in enumerate(self.edges):
            if value <= edge:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        """Mean of added values (0.0 when empty)."""
        return self.total / self.n if self.n else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "n": self.n,
            "mean": self.mean,
        }


class TimeSeriesCollector:
    """Samples fleet state and message counters on a fixed sim-time cadence.

    Parameters
    ----------
    nodes:
        The fleet to sample buffer state from.
    interval:
        Simulated seconds between samples (also the throughput window).
    per_node:
        Record each node's occupancy per sample (JSON export only; the CSV
        keeps fleet aggregates so a 200-node run stays spreadsheet-sized).
    """

    def __init__(
        self,
        nodes: list[Node],
        interval: float = 60.0,
        per_node: bool = True,
    ) -> None:
        if interval <= 0:
            raise ConfigurationError(
                f"sample interval must be positive, got {interval}"
            )
        self.nodes = nodes
        self.interval = float(interval)
        self.per_node = bool(per_node)
        # cumulative counters (updated by event handlers)
        self.created = 0
        self.delivered = 0
        self.relayed = 0
        self.bytes_relayed = 0
        self.transfers_started = 0
        self.transfers_aborted = 0
        self.drops_by_reason: dict[str, int] = {r: 0 for r in DROP_REASONS}
        self.faults_by_kind: dict[str, int] = {}
        # histograms
        self.latency_hist = Histogram(LATENCY_EDGES)
        self.transfer_duration_hist = Histogram(DURATION_EDGES)
        # sample rows
        self._columns: dict[str, list[float]] = {
            c: [] for c in self.column_names()
        }
        self._node_occupancy: list[list[float]] = []
        self._last_sample_time: float | None = None
        self._last_bytes = 0
        self._now = lambda: 0.0

    @staticmethod
    def column_names() -> tuple[str, ...]:
        """CSV/JSON column order (drop reasons expand positionally)."""
        return (
            "time",
            "created",
            "delivered",
            "relayed",
            "delivery_ratio",
            *(f"drop_{reason}" for reason in DROP_REASONS),
            "drops_total",
            "buffer_used_bytes",
            "occupancy_mean",
            "occupancy_max",
            "live_messages",
            "live_copies",
            "bytes_relayed",
            "throughput_Bps",
            "transfers_started",
            "transfers_aborted",
            "faults_total",
        )

    # -- wiring ------------------------------------------------------------

    def subscribe(self, sim: Simulator) -> None:
        """Attach counters to *sim* and arm the recurring sample event."""
        self._now = lambda: sim.now
        listeners = sim.listeners
        listeners.subscribe("message.created", self._on_created)
        listeners.subscribe("message.delivered", self._on_delivered)
        listeners.subscribe("message.relayed", self._on_relayed)
        listeners.subscribe("message.dropped", self._on_dropped)
        listeners.subscribe("transfer.started", self._on_transfer_started)
        listeners.subscribe("transfer.aborted", self._on_transfer_aborted)
        listeners.subscribe("fault.injected", self._on_fault)
        sim.schedule_every(
            self.interval, self._sample, priority=PRIORITY_REPORT,
            name="obs.sample",
        )

    # -- event handlers ----------------------------------------------------

    def _on_created(self, message: Message) -> None:
        self.created += 1

    def _on_delivered(self, message: Message, sender: Node, receiver: Node) -> None:
        self.delivered += 1
        self.latency_hist.add(self._now() - message.created_at)

    def _on_relayed(
        self, message: Message, sender: Node, receiver: Node, outcome: object
    ) -> None:
        self.relayed += 1
        self.bytes_relayed += message.size

    def _on_dropped(self, message: Message, node: Node, reason: str) -> None:
        self.drops_by_reason[reason] = self.drops_by_reason.get(reason, 0) + 1

    def _on_transfer_started(self, transfer: Transfer) -> None:
        self.transfers_started += 1
        self.transfer_duration_hist.add(transfer.eta - transfer.started_at)

    def _on_transfer_aborted(self, transfer: Transfer) -> None:
        self.transfers_aborted += 1

    def _on_fault(self, kind: str, now: float) -> None:
        self.faults_by_kind[kind] = self.faults_by_kind.get(kind, 0) + 1

    # -- sampling ----------------------------------------------------------

    def _sample(self) -> None:
        now = self._now()
        occupancies = [node.buffer.occupancy() for node in self.nodes]
        used = 0
        live_ids: set[str] = set()
        live_copies = 0
        for node in self.nodes:
            buf = node.buffer
            used += buf.used
            for message in buf:
                live_ids.add(message.msg_id)
                live_copies += message.copies
        if self._last_sample_time is None:
            window = self.interval
            delta = self.bytes_relayed
        else:
            window = now - self._last_sample_time
            delta = self.bytes_relayed - self._last_bytes
        throughput = delta / window if window > 0 else 0.0
        drops_total = sum(self.drops_by_reason.values())
        row = {
            "time": now,
            "created": self.created,
            "delivered": self.delivered,
            "relayed": self.relayed,
            "delivery_ratio": (
                self.delivered / self.created if self.created else 0.0
            ),
            **{
                f"drop_{reason}": self.drops_by_reason.get(reason, 0)
                for reason in DROP_REASONS
            },
            "drops_total": drops_total,
            "buffer_used_bytes": used,
            "occupancy_mean": (
                sum(occupancies) / len(occupancies) if occupancies else 0.0
            ),
            "occupancy_max": max(occupancies, default=0.0),
            "live_messages": len(live_ids),
            "live_copies": live_copies,
            "bytes_relayed": self.bytes_relayed,
            "throughput_Bps": throughput,
            "transfers_started": self.transfers_started,
            "transfers_aborted": self.transfers_aborted,
            "faults_total": sum(self.faults_by_kind.values()),
        }
        for column, values in self._columns.items():
            values.append(row[column])
        if self.per_node:
            self._node_occupancy.append(occupancies)
        self._last_sample_time = now
        self._last_bytes = self.bytes_relayed

    def finalize(self, now: float) -> None:
        """Take a closing sample at *now* unless one was just taken.

        Called by the runner after the horizon so the last row always
        reflects the complete run (the recurring event stops one interval
        short when the horizon is not a multiple of the cadence).
        """
        last = self._last_sample_time
        if last is None or now - last > 1e-9:
            self._sample()

    # -- access ------------------------------------------------------------

    @property
    def n_samples(self) -> int:
        return len(self._columns["time"])

    def series(self, column: str) -> list[float]:
        """One column's values, aligned with ``series("time")``."""
        if column not in self._columns:
            raise KeyError(
                f"unknown column {column!r}; see column_names()"
            )
        return list(self._columns[column])

    def as_dict(self) -> dict[str, Any]:
        """The full export payload (what :meth:`write_json` dumps)."""
        payload: dict[str, Any] = {
            "interval": self.interval,
            "columns": list(self.column_names()),
            "samples": {c: list(v) for c, v in self._columns.items()},
            "histograms": {
                "delivery_latency_s": self.latency_hist.as_dict(),
                "transfer_duration_s": self.transfer_duration_hist.as_dict(),
            },
            "faults_by_kind": dict(self.faults_by_kind),
        }
        if self.per_node:
            payload["node_occupancy"] = [
                list(row) for row in self._node_occupancy
            ]
        return payload

    # -- export ------------------------------------------------------------

    def write_json(self, path: str | Path) -> None:
        with Path(path).open("w", encoding="utf-8") as fh:
            json.dump(self.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def write_csv(self, path: str | Path) -> None:
        """Fleet-aggregate columns only (per-node data lives in the JSON)."""
        columns = self.column_names()
        with Path(path).open("w", encoding="utf-8", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(columns)
            for i in range(self.n_samples):
                writer.writerow(self._columns[c][i] for c in columns)

    def write(self, path: str | Path) -> None:
        """Dispatch on suffix: ``.csv`` -> CSV, anything else -> JSON."""
        if str(path).lower().endswith(".csv"):
            self.write_csv(path)
        else:
            self.write_json(path)


def read_timeseries_json(path: str | Path) -> dict[str, Any]:
    """Parse a :meth:`TimeSeriesCollector.write_json` export.

    Validates the envelope (``columns``/``samples`` present, every column's
    series the same length) and raises
    :class:`~repro.errors.ObsFormatError` on malformed input.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise ObsFormatError(f"{path}: malformed metrics JSON ({exc})") from None
    if not isinstance(payload, dict):
        raise ObsFormatError(f"{path}: metrics export is not a JSON object")
    if "columns" not in payload or "samples" not in payload:
        raise ObsFormatError(
            f"{path}: metrics export missing 'columns'/'samples'"
        )
    samples = payload["samples"]
    if not isinstance(samples, dict):
        raise ObsFormatError(f"{path}: 'samples' is not an object")
    lengths = {len(v) for v in samples.values() if isinstance(v, list)}
    if len(lengths) > 1 or len(samples) != len(payload["columns"]):
        raise ObsFormatError(f"{path}: ragged or incomplete sample columns")
    return payload
