"""Structured event tracing: a bounded ring buffer of engine events.

:class:`EventTrace` subscribes to the simulator's message/transfer/link/fault
topics and keeps the last *capacity* events as plain dicts with sim-time
stamps.  The buffer is bounded so tracing a multi-hour sweep cannot exhaust
memory; :attr:`EventTrace.events_seen` counts everything observed, including
records that have already been evicted from the ring.

Records serialize as JSONL — one compact, key-sorted JSON object per line —
so two runs of the same seeded scenario produce *byte-identical* dumps
(the determinism suite relies on this).  :func:`read_trace_jsonl` parses a
dump back, raising :class:`~repro.errors.ObsFormatError` (never ``KeyError``)
on malformed or truncated input, and :func:`aggregate_trace` re-derives the
headline counters so exports can be validated against the in-memory
:class:`~repro.reports.metrics.MetricsCollector`.

Trace record schema (all records have ``t`` (sim seconds) and ``topic``):

====================  ========================================================
``message.created``   ``msg, src, dst, size, copies, ttl``
``message.relayed``   ``msg, from, to, outcome``
``message.delivered`` ``msg, from, to, hops``
``message.dropped``   ``msg, node, reason`` (reason: ``DROP_REASONS``)
``message.expired``   ``msg, node``
``transfer.started``  ``seq, msg, from, to, mode, eta``
``transfer.commit``   ``seq, msg``
``transfer.aborted``  ``seq, msg, from, to``
``link.up``           ``a, b``
``link.down``         ``a, b``
``fault.injected``    ``kind``
====================  ========================================================
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.errors import ConfigurationError, ObsFormatError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.simulator import Simulator
    from repro.net.message import Message
    from repro.net.transfer import Transfer
    from repro.world.node import Node

__all__ = [
    "DEFAULT_CONTEXT_EVENTS",
    "DEFAULT_TRACE_CAPACITY",
    "EventTrace",
    "TRACE_TOPICS",
    "aggregate_trace",
    "format_record",
    "read_trace_jsonl",
]

#: Default ring size: plenty for reduced scenarios, bounded for full ones.
DEFAULT_TRACE_CAPACITY = 65536
#: How many trailing events accompany an ``InvariantViolation`` (see
#: :func:`repro.experiments.runner.run_built`).
DEFAULT_CONTEXT_EVENTS = 50

#: Topics recorded by :meth:`EventTrace.subscribe`.
TRACE_TOPICS = (
    "message.created",
    "message.relayed",
    "message.delivered",
    "message.dropped",
    "message.expired",
    "transfer.started",
    "transfer.commit",
    "transfer.aborted",
    "link.up",
    "link.down",
    "fault.injected",
)


class EventTrace:
    """Bounded, deterministic ring buffer of structured engine events."""

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY) -> None:
        if capacity <= 0:
            raise ConfigurationError(
                f"trace capacity must be positive, got {capacity}"
            )
        self.capacity = int(capacity)
        self._records: deque[dict[str, Any]] = deque(maxlen=self.capacity)
        #: Total events observed (>= len(self) once the ring wraps).
        self.events_seen = 0
        self._now = lambda: 0.0

    # -- wiring ------------------------------------------------------------

    def subscribe(self, sim: Simulator) -> None:
        """Attach to *sim*'s listener registry (observation-only)."""
        self._now = lambda: sim.now
        listeners = sim.listeners
        listeners.subscribe("message.created", self._on_created)
        listeners.subscribe("message.relayed", self._on_relayed)
        listeners.subscribe("message.delivered", self._on_delivered)
        listeners.subscribe("message.dropped", self._on_dropped)
        listeners.subscribe("message.expired", self._on_expired)
        listeners.subscribe("transfer.started", self._on_transfer_started)
        listeners.subscribe("transfer.commit", self._on_transfer_commit)
        listeners.subscribe("transfer.aborted", self._on_transfer_aborted)
        listeners.subscribe("link.up", self._on_link_up)
        listeners.subscribe("link.down", self._on_link_down)
        listeners.subscribe("fault.injected", self._on_fault)

    def _add(self, topic: str, **fields: Any) -> None:
        record: dict[str, Any] = {"t": self._now(), "topic": topic}
        record.update(fields)
        self.events_seen += 1
        self._records.append(record)

    # -- handlers ----------------------------------------------------------

    def _on_created(self, message: Message) -> None:
        self._add(
            "message.created",
            msg=message.msg_id,
            src=message.source,
            dst=message.destination,
            size=message.size,
            copies=message.copies,
            ttl=message.ttl,
        )

    def _on_relayed(
        self, message: Message, sender: Node, receiver: Node, outcome: object
    ) -> None:
        self._add(
            "message.relayed",
            msg=message.msg_id,
            **{"from": sender.id, "to": receiver.id},
            outcome=getattr(outcome, "value", str(outcome)),
        )

    def _on_delivered(self, message: Message, sender: Node, receiver: Node) -> None:
        self._add(
            "message.delivered",
            msg=message.msg_id,
            **{"from": sender.id, "to": receiver.id},
            hops=message.hop_count,
        )

    def _on_dropped(self, message: Message, node: Node, reason: str) -> None:
        self._add(
            "message.dropped", msg=message.msg_id, node=node.id, reason=reason
        )

    def _on_expired(self, message: Message, node: Node) -> None:
        self._add("message.expired", msg=message.msg_id, node=node.id)

    def _on_transfer_started(self, transfer: Transfer) -> None:
        self._add(
            "transfer.started",
            seq=transfer.seq,
            msg=transfer.message.msg_id,
            **{"from": transfer.sender.id, "to": transfer.receiver.id},
            mode=transfer.mode,
            eta=transfer.eta,
        )

    def _on_transfer_commit(self, transfer: Transfer) -> None:
        self._add(
            "transfer.commit", seq=transfer.seq, msg=transfer.message.msg_id
        )

    def _on_transfer_aborted(self, transfer: Transfer) -> None:
        self._add(
            "transfer.aborted",
            seq=transfer.seq,
            msg=transfer.message.msg_id,
            **{"from": transfer.sender.id, "to": transfer.receiver.id},
        )

    def _on_link_up(self, a: Node, b: Node) -> None:
        self._add("link.up", a=a.id, b=b.id)

    def _on_link_down(self, a: Node, b: Node) -> None:
        self._add("link.down", a=a.id, b=b.id)

    def _on_fault(self, kind: str, now: float) -> None:
        self._add("fault.injected", kind=kind)

    # -- access ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> list[dict[str, Any]]:
        """All retained records, oldest first (copies of the ring)."""
        return list(self._records)

    def tail(self, n: int = DEFAULT_CONTEXT_EVENTS) -> list[dict[str, Any]]:
        """The last *n* records (fewer if the trace is shorter)."""
        if n <= 0:
            return []
        records = self._records
        if n >= len(records):
            return list(records)
        return list(records)[-n:]

    # -- serialization ------------------------------------------------------

    def to_jsonl(self) -> str:
        """The whole ring as JSONL (deterministic: compact, sorted keys)."""
        return "".join(format_record(r) for r in self._records)

    def dump_jsonl(self, path: str | Path) -> int:
        """Write the ring to *path* as JSONL; returns the record count."""
        Path(path).write_text(self.to_jsonl(), encoding="utf-8")
        return len(self._records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<EventTrace {len(self)}/{self.capacity} retained, "
            f"{self.events_seen} seen>"
        )


def format_record(record: dict[str, Any]) -> str:
    """One trace record as a compact, key-sorted JSON line."""
    return json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"


def read_trace_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Parse a JSONL trace dump back into records.

    Malformed lines — truncated JSON, non-object lines, records missing the
    required ``t``/``topic`` keys or with a non-numeric timestamp — raise
    :class:`~repro.errors.ObsFormatError` naming the file and line, never a
    bare ``KeyError``/``JSONDecodeError``.
    """
    path = Path(path)
    records: list[dict[str, Any]] = []
    with path.open(encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise ObsFormatError(
                    f"{path}:{lineno}: malformed trace line ({exc})"
                ) from None
            if not isinstance(record, dict):
                raise ObsFormatError(
                    f"{path}:{lineno}: trace record is not a JSON object"
                )
            if "topic" not in record or "t" not in record:
                raise ObsFormatError(
                    f"{path}:{lineno}: trace record missing 't'/'topic' keys"
                )
            if not isinstance(record["t"], (int, float)) or isinstance(
                record["t"], bool
            ):
                raise ObsFormatError(
                    f"{path}:{lineno}: timestamp is not a number: "
                    f"{record['t']!r}"
                )
            records.append(record)
    return records


def aggregate_trace(records: list[dict[str, Any]]) -> dict[str, Any]:
    """Re-derive headline counters from trace records.

    Returns a dict with ``created``, ``delivered``, ``relayed``, ``started``,
    ``aborted``, ``commits``, ``drops_by_reason`` and ``faults_by_kind`` —
    directly comparable to a warm-up-free
    :class:`~repro.reports.metrics.MetricsCollector` (round-trip-tested in
    ``tests/obs/test_trace.py``).  A record whose topic needs a field it
    lacks raises :class:`~repro.errors.ObsFormatError`.
    """
    counts = {
        "created": 0,
        "delivered": 0,
        "relayed": 0,
        "started": 0,
        "aborted": 0,
        "commits": 0,
    }
    drops: dict[str, int] = {}
    faults: dict[str, int] = {}
    for i, record in enumerate(records):
        topic = record.get("topic")
        if topic == "message.created":
            counts["created"] += 1
        elif topic == "message.delivered":
            counts["delivered"] += 1
        elif topic == "message.relayed":
            counts["relayed"] += 1
        elif topic == "transfer.started":
            counts["started"] += 1
        elif topic == "transfer.aborted":
            counts["aborted"] += 1
        elif topic == "transfer.commit":
            counts["commits"] += 1
        elif topic == "message.dropped":
            if "reason" not in record:
                raise ObsFormatError(
                    f"record {i}: message.dropped without 'reason'"
                )
            reason = record["reason"]
            drops[reason] = drops.get(reason, 0) + 1
        elif topic == "fault.injected":
            if "kind" not in record:
                raise ObsFormatError(
                    f"record {i}: fault.injected without 'kind'"
                )
            kind = record["kind"]
            faults[kind] = faults.get(kind, 0) + 1
    return {**counts, "drops_by_reason": drops, "faults_by_kind": faults}
