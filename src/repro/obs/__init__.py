"""Observability: time-series metrics, event tracing, profiling hooks.

Scrape-free observers layered on the simulator's listener registry
(:mod:`repro.engine.hooks`).  Everything in this package is strictly
*observation-only*: attaching any combination of collectors to a run must
not change a single simulation outcome (enforced by
``tests/obs/test_observation_only.py``).

* :class:`~repro.obs.timeseries.TimeSeriesCollector` — counters, gauges and
  histograms sampled on a fixed simulated-time cadence (delivery ratio so
  far, fleet/per-node buffer occupancy, live spray copies, drops by reason,
  transfer throughput, fault events), exportable as JSON or CSV.
* :class:`~repro.obs.trace.EventTrace` — a bounded ring buffer of structured
  engine events (``message.*``, ``transfer.*``, ``link.*``, ``fault.*``)
  with sim-time stamps, dumpable as JSONL and re-parseable with
  :func:`~repro.obs.trace.read_trace_jsonl`.
* :class:`~repro.obs.profiler.PhaseProfiler` — per-subsystem wall-time
  accounting (movement, contact detection, routing, policy decisions,
  transfers), surfaced in :class:`~repro.reports.summary.RunSummary`.

See ``docs/observability.md`` for schemas and overhead numbers.
"""

from repro.obs.profiler import PhaseProfiler, timed
from repro.obs.timeseries import Histogram, TimeSeriesCollector
from repro.obs.trace import (
    DEFAULT_CONTEXT_EVENTS,
    EventTrace,
    aggregate_trace,
    read_trace_jsonl,
)

__all__ = [
    "DEFAULT_CONTEXT_EVENTS",
    "EventTrace",
    "Histogram",
    "PhaseProfiler",
    "TimeSeriesCollector",
    "aggregate_trace",
    "read_trace_jsonl",
    "timed",
]
