"""Per-subsystem wall-time accounting (profiling hooks).

A :class:`PhaseProfiler` hangs off :attr:`repro.engine.simulator.Simulator.profiler`
(``None`` by default — the hot path pays one attribute read when profiling
is off).  Instrumented subsystems wrap their work in
``with timed(sim.profiler, "movement"):`` blocks; nested phases are
supported and each phase is charged its *self* time only, so the per-phase
seconds sum to (approximately) the instrumented wall time with no double
counting — e.g. a policy decision made while completing a transfer is
charged to ``policy``, not twice.

Wall-clock reads here use :func:`time.perf_counter`, which is explicitly
allowed by reprolint REP002: profiling output is diagnostic and never feeds
back into simulation state, so runs stay bit-reproducible with profiling on
(enforced by ``tests/obs/test_observation_only.py``).

Phase names used by the instrumented call sites:

==============  ==============================================================
``movement``    mobility model advance (:meth:`World.update`)
``contacts``    contact detection / link-set recompute
``links``       link up/down transitions (incl. routers reacting to them)
``routing``     TTL purges, idle-sender kicks, send selection scans
``policy``      buffer-policy drop decisions (make-room loops)
``transfer``    transfer completion processing (receive path)
``traffic``     message generation
``observers``   listener fan-out of the per-tick ``world.updated`` event
==============  ==============================================================
"""

from __future__ import annotations

import time
from collections.abc import Iterator
from contextlib import contextmanager, nullcontext
from typing import ContextManager

__all__ = ["PhaseProfiler", "timed"]

#: Shared no-op context for the profiling-off path (reentrant and reusable).
_NULL: ContextManager[None] = nullcontext()


class PhaseProfiler:
    """Accumulates self-time wall seconds per named phase.

    Not thread-safe — one profiler per simulator, driven by the (single
    threaded) event loop.
    """

    def __init__(self) -> None:
        #: Exclusive (self) seconds per phase.
        self.self_seconds: dict[str, float] = {}
        #: Number of times each phase was entered.
        self.calls: dict[str, int] = {}
        # Stack frames: [name, start, child_elapsed] (list for mutability).
        self._stack: list[list] = []

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time the enclosed block, charging nested phases to themselves."""
        frame = [name, time.perf_counter(), 0.0]
        self._stack.append(frame)
        try:
            yield
        finally:
            self._stack.pop()
            elapsed = time.perf_counter() - frame[1]
            self.self_seconds[name] = (
                self.self_seconds.get(name, 0.0) + elapsed - frame[2]
            )
            self.calls[name] = self.calls.get(name, 0) + 1
            if self._stack:  # charge inclusive time to the parent's children
                self._stack[-1][2] += elapsed

    def total_seconds(self) -> float:
        """Sum of all phases' self time (instrumented wall time)."""
        return sum(self.self_seconds.values())

    def as_dict(self) -> dict[str, float]:
        """Phase -> self seconds, sorted by phase name (JSON-stable)."""
        return {name: self.self_seconds[name] for name in sorted(self.self_seconds)}

    def table(self) -> str:
        """Human-readable per-phase breakdown (largest first)."""
        total = self.total_seconds()
        lines = [f"{'phase':<12} {'self (s)':>10} {'calls':>9} {'share':>7}"]
        for name, secs in sorted(
            self.self_seconds.items(), key=lambda kv: -kv[1]
        ):
            share = secs / total if total > 0 else 0.0
            lines.append(
                f"{name:<12} {secs:>10.4f} {self.calls[name]:>9} {share:>6.1%}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PhaseProfiler {self.as_dict()}>"


def timed(profiler: PhaseProfiler | None, name: str) -> ContextManager[None]:
    """``profiler.phase(name)``, or a shared no-op when profiling is off.

    The instrumentation idiom at every call site::

        with timed(self.sim.profiler, "movement"):
            ...

    costs one function call and a no-op context enter/exit when disabled —
    negligible next to the numpy work inside the blocks.
    """
    if profiler is None:
        return _NULL
    return profiler.phase(name)
