"""Pairwise intermeeting-rate estimation for the analytic backend.

Every mean-field model in this package is parameterized by one number: the
rate λ at which a given node *pair* comes into radio contact.  Two
estimators provide it (``docs/analytic.md`` derives both):

* **Derived** — Groenevelt's mean-field result for waypoint mobilities in
  a rectangle of area A: ``λ = 2 · w · r · E[v*] / A`` with transmission
  range r, average relative speed ``E[v*]`` and the waypoint constant w
  (≈1.3683 for random waypoint, 1.0 for isotropic direction models).
  Pause time scales the relative speed by the fraction of time a node
  spends moving.  Pure arithmetic on the config — valid at any fleet size,
  which is what lets a million-node query run without any simulation.
* **Calibrated** — the empirical fallback for mobilities whose spatial
  structure defeats the uniform-density assumption (the taxi fleet's
  hotspot clustering roughly doubles contact rates): run a short,
  traffic-free, capped-fleet scalar simulation at matched node density and
  read λ off the observed contact count.  Seeded from the scenario seed,
  so the estimate — and everything derived from it — is deterministic.

:func:`meeting_rate` picks per mobility kind (``METHOD_AUTO``); tests and
the docs can force either path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.experiments.scenario import ScenarioConfig
from repro.rng import derive_seed

__all__ = [
    "METHOD_AUTO",
    "METHOD_CALIBRATED",
    "METHOD_DERIVED",
    "MeetingRate",
    "meeting_rate",
]

METHOD_AUTO = "auto"
METHOD_DERIVED = "derived"
METHOD_CALIBRATED = "calibrated"

#: Groenevelt's waypoint constant: the spatial node distribution of random
#: waypoint concentrates mass in the middle of the area, raising the
#: meeting rate over a uniform layout by this factor.
RWP_CONSTANT = 1.3683
#: Isotropic models (random direction / random walk) keep a uniform
#: stationary distribution, so the constant is 1.
ISOTROPIC_CONSTANT = 1.0

#: Mobility kinds with a derived closed form.  The taxi fleet is excluded:
#: its hotspot attraction concentrates the fleet far beyond what any
#: uniform-density constant captures, so it always calibrates.
DERIVED_MOBILITIES = ("rwp", "random-walk", "random-direction")

#: Calibration run shape: fleets are capped (density preserved by shrinking
#: the area) and the horizon bounded so the fallback stays interactive.
CALIBRATION_MAX_NODES = 40
CALIBRATION_HORIZON = 3000.0

#: Mean waypoint-leg length in a unit square (standard RWP constant); legs
#: in an a×b rectangle scale with sqrt(a·b).
_UNIT_SQUARE_LEG = 0.5214

#: TaxiFleet defaults (repro.mobility.taxi) — the calibration *scenario*
#: uses the real model; these only seed the derived cross-check in tests.
_TAXI_SPEED = (4.0, 14.0)
_TAXI_PAUSE = (10.0, 120.0)


@dataclass(frozen=True)
class MeetingRate:
    """One pairwise meeting-rate estimate and its provenance."""

    #: λ — contacts per second for a given node pair.
    rate: float
    #: ``METHOD_DERIVED`` or ``METHOD_CALIBRATED``.
    method: str
    #: Human-readable note on how the number was obtained.
    detail: str = ""

    def __post_init__(self) -> None:
        if not self.rate > 0.0 or not math.isfinite(self.rate):
            raise ConfigurationError(
                f"meeting rate must be positive and finite: {self.rate}"
            )

    @property
    def mean_intermeeting(self) -> float:
        """E[I] = 1/λ — mean pairwise intermeeting time in seconds."""
        return 1.0 / self.rate


def _mean(pair: tuple[float, float]) -> float:
    return 0.5 * (pair[0] + pair[1])


def _moving_fraction(
    speed_range: tuple[float, float],
    pause_range: tuple[float, float],
    area: tuple[float, float],
) -> float:
    """Fraction of time a waypoint node spends moving (vs paused)."""
    speed = _mean(speed_range)
    if speed <= 0:
        return 0.0
    leg = _UNIT_SQUARE_LEG * math.sqrt(area[0] * area[1])
    move_time = leg / speed
    pause_time = _mean(pause_range)
    return move_time / (move_time + pause_time)


def _relative_speed(speed: float, moving: float) -> float:
    """E[v*] — mean relative speed between two nodes.

    Both moving with isotropic headings: ``(4/π)·v``.  Exactly one moving:
    the mover's own speed.  Both paused contributes zero.
    """
    both = moving * moving
    one = 2.0 * moving * (1.0 - moving)
    return both * (4.0 / math.pi) * speed + one * speed


def derived_rate(config: ScenarioConfig) -> MeetingRate:
    """Groenevelt's formula evaluated on the scenario's mobility fields."""
    if config.mobility not in DERIVED_MOBILITIES:
        raise ConfigurationError(
            f"no derived meeting-rate formula for mobility "
            f"{config.mobility!r}; expected one of {DERIVED_MOBILITIES} "
            "(taxi/trace scenarios calibrate from a short run instead)"
        )
    w = RWP_CONSTANT if config.mobility == "rwp" else ISOTROPIC_CONSTANT
    area = config.area[0] * config.area[1]
    if area <= 0:
        raise ConfigurationError(f"degenerate area {config.area}")
    moving = _moving_fraction(config.speed_range, config.pause_range, config.area)
    v_rel = _relative_speed(_mean(config.speed_range), moving)
    if v_rel <= 0:
        raise ConfigurationError(
            "derived meeting rate needs a positive mean speed; "
            f"got speed_range={config.speed_range}"
        )
    rate = 2.0 * w * config.radio_range * v_rel / area
    return MeetingRate(
        rate=rate,
        method=METHOD_DERIVED,
        detail=(
            f"2·{w:.4f}·r({config.radio_range:.0f} m)"
            f"·E[v*]({v_rel:.2f} m/s)/A({area:.0f} m²)"
        ),
    )


def _calibration_config(config: ScenarioConfig) -> ScenarioConfig:
    """The short, traffic-free scenario the calibration run executes.

    The fleet is capped at :data:`CALIBRATION_MAX_NODES` with the area
    shrunk to preserve node density (the meeting rate of a *pair* is
    density-free only in the uniform case; clustered mobilities keep their
    per-pair statistics when density is held).  Traffic is pushed past the
    horizon — contacts are a pure mobility property (the fig3 idiom).
    """
    n_nodes = min(config.n_nodes, CALIBRATION_MAX_NODES)
    scale = n_nodes / config.n_nodes
    w, h = config.area
    side = math.sqrt(scale)
    horizon = min(config.sim_time, CALIBRATION_HORIZON)
    return config.replace(
        name=f"{config.name}-calibration",
        engine_backend="scalar",
        n_nodes=n_nodes,
        area=(w * side, h * side),
        sim_time=horizon,
        interval_range=(horizon * 10.0, horizon * 10.0 + 1.0),
        policy="fifo",
        router="direct",
        seed=derive_seed(config.seed, "analytic.calibration"),
        faults=None,
        sanitize=False,
        obs_interval=0.0,
        trace_capacity=0,
        profile=False,
        snapshot_every=0.0,
        snapshot_to=None,
        with_buffer_report=False,
    )


def calibrated_rate(config: ScenarioConfig) -> MeetingRate:
    """λ from a short seeded simulator run (see module docstring).

    The estimator is the observed contact count over the pair-time product:
    ``λ ≈ contacts / (T · N(N−1)/2)``.  Counting *contacts* rather than
    intermeeting gaps sidesteps the censoring bias of short runs (a pair
    must meet twice to yield one gap, but every meeting counts here).
    """
    # Imported lazily: repro.experiments.runner dispatches analytic configs
    # into this package, so a module-level import would be a cycle.
    from repro.experiments.runner import build_scenario

    calib = _calibration_config(config)
    built = build_scenario(calib)
    built.sim.run()
    contacts = built.contacts.contact_count
    pairs = calib.n_nodes * (calib.n_nodes - 1) / 2.0
    if contacts <= 0:
        raise ConfigurationError(
            f"calibration run for {config.name!r} observed no contacts in "
            f"{calib.sim_time:.0f} s with {calib.n_nodes} nodes; the "
            "scenario is too sparse for the analytic backend"
        )
    rate = contacts / (calib.sim_time * pairs)
    return MeetingRate(
        rate=rate,
        method=METHOD_CALIBRATED,
        detail=(
            f"{contacts} contacts / ({calib.sim_time:.0f} s × "
            f"{pairs:.0f} pairs), {calib.n_nodes}-node seeded run"
        ),
    )


def meeting_rate(config: ScenarioConfig, method: str = METHOD_AUTO) -> MeetingRate:
    """The scenario's pairwise meeting rate λ.

    ``METHOD_AUTO`` uses the derived formula for uniform waypoint
    mobilities and calibration for everything else (taxi).
    """
    if method == METHOD_DERIVED:
        return derived_rate(config)
    if method == METHOD_CALIBRATED:
        return calibrated_rate(config)
    if method != METHOD_AUTO:
        raise ConfigurationError(
            f"unknown meeting-rate method {method!r}; expected "
            f"{(METHOD_AUTO, METHOD_DERIVED, METHOD_CALIBRATED)}"
        )
    if config.mobility in DERIVED_MOBILITIES:
        return derived_rate(config)
    return calibrated_rate(config)
