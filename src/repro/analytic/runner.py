"""Evaluate a scenario config against the analytic models.

:func:`run_analytic` is the package entry point: estimate the meeting rate,
build the router-appropriate delay model (with a damped buffer-blocking
fixed point for the spray routers, mirroring the epidemic model's ρ), and
wrap everything in an :class:`~repro.analytic.result.AnalyticResult`.

:func:`run_analytic_summary` is what
:func:`repro.experiments.runner.run_scenario` dispatches to — it returns a
plain :class:`~repro.reports.summary.RunSummary`, sampled discretely for
``engine_backend="hybrid"`` and as pure expectations otherwise.
"""

from __future__ import annotations

import time

from repro.analytic.epidemic import epidemic_delay_model
from repro.analytic.meeting import METHOD_AUTO, meeting_rate
from repro.analytic.model import DelayModel
from repro.analytic.result import AnalyticResult
from repro.analytic.snw import direct_delay_model, snw_delay_model
from repro.errors import ConfigurationError
from repro.experiments.scenario import ANALYTIC_ROUTERS, ScenarioConfig
from repro.reports.summary import RunSummary

__all__ = ["ANALYTIC_ROUTERS", "run_analytic", "run_analytic_summary"]

#: Damped fixed-point iterations for the spray-router blocking factor.
_RHO_ITERATIONS = 6
#: Same ρ ceiling as the epidemic model.
_RHO_MAX = 0.95


def _gen_rate(config: ScenarioConfig) -> float:
    lo, hi = config.interval_range
    return 2.0 / (lo + hi)


def _snw_model(
    config: ScenarioConfig, rate: float, window: float
) -> tuple[DelayModel, float]:
    """Spray delay model with buffer blocking resolved by fixed point.

    Identical structure to the epidemic model's ρ loop: per-node expected
    occupancy ``x = γ·∫₀ᵂ E[copies](a) da / N`` versus the per-node copy
    capacity; overflow thins the spread rates by (1 − ρ).
    """
    source = config.router == "snw-source"
    capacity = config.buffer_bytes / config.message_size
    gen = _gen_rate(config)
    rho = 0.0
    model = snw_delay_model(
        n_nodes=config.n_nodes,
        copies=config.initial_copies,
        rate=rate,
        window=window,
        source_spray=source,
    )
    for _ in range(_RHO_ITERATIONS):
        occupancy = gen * model.int_copies(window) / config.n_nodes
        target = (
            0.0
            if occupancy <= capacity
            else min(_RHO_MAX, 1.0 - capacity / occupancy)
        )
        new_rho = 0.5 * rho + 0.5 * target
        if abs(new_rho - rho) < 1e-9:
            rho = new_rho
            break
        rho = new_rho
        model = snw_delay_model(
            n_nodes=config.n_nodes,
            copies=config.initial_copies,
            rate=rate,
            window=window,
            source_spray=source,
            thin=1.0 - rho,
        )
    return model, rho


def run_analytic(
    config: ScenarioConfig, rate_method: str = METHOD_AUTO
) -> AnalyticResult:
    """Evaluate *config* analytically and return the full result object."""
    wall_start = time.perf_counter()
    if config.router not in ANALYTIC_ROUTERS:
        raise ConfigurationError(
            f"router {config.router!r} has no analytic model; "
            f"expected one of {ANALYTIC_ROUTERS}"
        )
    meeting = meeting_rate(config, method=rate_method)
    window = min(config.ttl, config.sim_time)
    blocking = 0.0
    model: DelayModel
    if config.router in ("snw", "snw-source"):
        model, blocking = _snw_model(config, meeting.rate, window)
    elif config.router == "epidemic":
        model, blocking = epidemic_delay_model(
            n_nodes=config.n_nodes,
            rate=meeting.rate,
            window=window,
            gen_rate=_gen_rate(config),
            buffer_capacity_msgs=config.buffer_bytes / config.message_size,
        )
    else:  # direct
        model = direct_delay_model(rate=meeting.rate, window=window)
    return AnalyticResult(
        config=config,
        meeting=meeting,
        model=model,
        blocking=blocking,
        wall_seconds=time.perf_counter() - wall_start,
    )


def run_analytic_summary(config: ScenarioConfig) -> RunSummary:
    """The dispatch target for analytic/hybrid engine backends."""
    result = run_analytic(config)
    if config.engine_backend == "hybrid":
        # Imported lazily: hybrid builds on AnalyticResult, which this
        # module constructs — keep the dependency one-directional at import.
        from repro.analytic.hybrid import hybrid_summary

        return hybrid_summary(result)
    return result.summary()
