"""Binary / source Spray-and-Wait delay distribution (arXiv 1111.6860).

Diana & Lochin model the delivery delay of one tagged message as the
absorption time of a birth/absorption Markov chain on the copy count
``n ∈ {1, .., M}`` with ``M = min(L, N−1)``:

* **spread** ``n → n+1`` at rate ``a_n`` — binary spray lets every one of
  the ``n`` holders split with any of the ``N−1−n`` uninfected non-
  destination nodes (``a_n = n·(N−1−n)·λ``); source spray only lets the
  source hand out copies (``a_n = (N−1−n)·λ``);
* **delivery** (absorption) at rate ``d_n = n·λ`` — any holder meeting the
  destination delivers.

With pairwise exponential intermeeting times (rate λ) the delay is
phase-type: ``F(t) = 1 − p(t)·𝟙`` where ``p' = p·T`` on the transient
sub-generator ``T``.  We propagate ``p`` on a uniform grid with one matrix
exponential ``E = expm(T·Δt)`` — exact for the chain, immune to the
stiffness of million-node rate magnitudes, and a few hundred small
mat-vecs in total.

A second, absorption-free copy of the chain tracks ``E[n(t)]`` for buffer
and relay accounting: real holders keep spraying after an (unobserved)
delivery, so the copy process must not stop at absorption.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analytic.linalg import expm
from repro.analytic.model import GRID_POINTS, DelayModel
from repro.errors import ConfigurationError

__all__ = ["direct_delay_model", "snw_delay_model"]

#: Cap on the CTMC state count.  ``L ≥ _MAX_STATES`` spray budgets are
#: clamped: past a few hundred simultaneous copies the absorption rate is
#: so large that the remaining tail mass is negligible, and the epidemic ODE
#: model is the honest tool for saturating-copy regimes anyway.
_MAX_STATES = 512


def snw_delay_model(
    *,
    n_nodes: int,
    copies: int,
    rate: float,
    window: float,
    source_spray: bool = False,
    thin: float = 1.0,
    grid_points: int = GRID_POINTS,
) -> DelayModel:
    """Delay model for an L-copy spray in an N-node fleet.

    ``window`` is the largest age the grid must cover (min(TTL, horizon)).
    ``thin`` scales the spread rates by (1 − blocking): a full relay buffer
    rejects the incoming copy, so congestion slows spraying but never the
    final delivery hop (destinations always accept their own messages).
    """
    if n_nodes < 2:
        raise ConfigurationError(f"n_nodes must be >= 2: {n_nodes}")
    if copies < 1:
        raise ConfigurationError(f"copies must be >= 1: {copies}")
    if window <= 0 or not math.isfinite(window):
        raise ConfigurationError(f"window must be positive finite: {window}")
    if rate <= 0 or not math.isfinite(rate):
        raise ConfigurationError(f"meeting rate must be positive: {rate}")
    if not 0.0 < thin <= 1.0:
        raise ConfigurationError(f"thin must be in (0, 1]: {thin}")
    m = min(copies, n_nodes - 1, _MAX_STATES)

    states = np.arange(1, m + 1, dtype=np.float64)
    # Spread rates a_n (the last state cannot spread further).
    if source_spray:
        spread = (n_nodes - 1 - states) * rate * thin
    else:
        spread = states * (n_nodes - 1 - states) * rate * thin
    spread = np.maximum(spread, 0.0)
    spread[-1] = 0.0
    deliver = states * rate

    dt = window / grid_points
    # Transient sub-generator of the absorbing chain.
    trans = np.diag(-(spread + deliver)) + np.diag(spread[:-1], k=1)
    step = expm(trans * dt)
    # Absorption-free spread chain for E[n(t)].
    pure = np.diag(-spread) + np.diag(spread[:-1], k=1)
    pure_step = expm(pure * dt)

    times = np.linspace(0.0, window, grid_points + 1, dtype=np.float64)
    cdf = np.empty(grid_points + 1, dtype=np.float64)
    mean_copies = np.empty(grid_points + 1, dtype=np.float64)
    depth = np.empty(grid_points + 1, dtype=np.float64)

    # Relay depth of the copy that delivers while n copies are live: binary
    # spray builds a balanced splitting tree (depth ≈ log2 n averaged over
    # holders); source spray keeps the source at depth 0 and every relay at
    # depth 1, and the delivering holder is the source w.p. 1/n.
    if source_spray:
        state_depth = 1.0 - 1.0 / states
    else:
        state_depth = np.log2(states)

    p = np.zeros(m, dtype=np.float64)
    p[0] = 1.0
    q = p.copy()
    last_depth = float(state_depth[0])
    for k in range(grid_points + 1):
        survive = float(p.sum())
        cdf[k] = min(1.0, max(0.0, 1.0 - survive))
        mean_copies[k] = float(q @ states)
        flux = p @ deliver
        if flux > 1e-300:
            last_depth = float((p * deliver) @ state_depth / flux)
        depth[k] = last_depth
        if k < grid_points:
            p = p @ step
            q = q @ pure_step
    np.maximum.accumulate(cdf, out=cdf)
    return DelayModel(times=times, cdf=cdf, mean_copies=mean_copies, depth=depth)


def direct_delay_model(
    *, rate: float, window: float, grid_points: int = GRID_POINTS
) -> DelayModel:
    """Direct delivery = a one-copy spray: ``F(t) = 1 − e^{−λt}``."""
    return snw_delay_model(
        n_nodes=2, copies=1, rate=rate, window=window, grid_points=grid_points
    )
