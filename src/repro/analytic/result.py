"""Render analytic model output into the simulator's reporting shapes.

An :class:`AnalyticResult` pairs a scenario config with its fitted
:class:`~repro.analytic.model.DelayModel` and meeting-rate provenance, and
renders two existing shapes:

* :meth:`AnalyticResult.summary` — a
  :class:`~repro.reports.summary.RunSummary` whose counters are the model's
  *expectations* (rounded where the simulator reports integers).  Sweeps,
  tables, figures, checkpoint files and the ``repro.service`` result cache
  consume it without knowing a simulation never ran.
* :meth:`AnalyticResult.timeseries` — a payload with exactly the
  :class:`~repro.obs.timeseries.TimeSeriesCollector` export schema
  (``columns``/``samples``/``histograms``), so ``--obs-out`` files from the
  analytic backend parse with :func:`repro.obs.timeseries.read_timeseries_json`
  and plot with the same tooling.

Everything here is closed-form arithmetic on the model's cached integrals;
repeated evaluation of the same config is bit-identical, which is what
lets the service cache serve analytic results byte-for-byte.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.analytic.meeting import MeetingRate
from repro.analytic.model import DelayModel
from repro.experiments.scenario import ScenarioConfig
from repro.net.outcomes import DROP_REASONS
from repro.obs.timeseries import (
    DURATION_EDGES,
    LATENCY_EDGES,
    TimeSeriesCollector,
)
from repro.reports.summary import RunSummary

__all__ = ["AnalyticResult"]

#: Default sample cadence (sim seconds) for :meth:`AnalyticResult.timeseries`
#: when the config does not set ``obs_interval``.
DEFAULT_OBS_INTERVAL = 60.0


@dataclass(frozen=True)
class AnalyticResult:
    """One analytic evaluation of a scenario config."""

    config: ScenarioConfig
    meeting: MeetingRate
    model: DelayModel
    #: Epidemic buffer-blocking factor ρ (0 for spray models).
    blocking: float = 0.0
    #: Wall-clock seconds the evaluation took (diagnostic only).
    wall_seconds: float = 0.0

    # -- building blocks -----------------------------------------------------

    @property
    def gen_rate(self) -> float:
        """Fleet-wide message-creation rate γ (messages per second)."""
        lo, hi = self.config.interval_range
        return 2.0 / (lo + hi)

    @property
    def window(self) -> float:
        """W = min(TTL, horizon) — the widest per-message window."""
        return min(self.config.ttl, self.config.sim_time, self.model.window)

    @property
    def expected_created(self) -> float:
        return self.gen_rate * self.config.sim_time

    @property
    def delivery_ratio(self) -> float:
        return self.model.horizon_delivery_ratio(
            self.config.sim_time, self.config.ttl
        )

    @property
    def average_latency(self) -> float:
        return self.model.horizon_mean_delay(
            self.config.sim_time, self.config.ttl
        )

    def _spread_per_message(self, window: float) -> float:
        """Expected completed relay transfers (excluding the delivery hop)
        for a message with residual window *window*: each copy beyond the
        first cost exactly one transfer."""
        return max(0.0, self.model.copies_at(window) - 1.0)

    def avg_spread(self) -> float:
        """Horizon average of :meth:`_spread_per_message` over creation times."""
        horizon = self.config.sim_time
        w = self.window
        inner = self.model.int_copies(w) - w
        tail = (horizon - w) * self._spread_per_message(w)
        return max(0.0, (inner + tail) / horizon)

    # -- summary -------------------------------------------------------------

    def summary(self) -> RunSummary:
        config = self.config
        created = round(self.expected_created)
        ratio = self.delivery_ratio
        delivered = round(created * ratio)
        relayed = round(created * self.avg_spread()) + delivered
        pairs = config.n_nodes * (config.n_nodes - 1) / 2.0
        contacts = round(self.meeting.rate * pairs * config.sim_time)
        overhead = (
            (relayed - delivered) / delivered if delivered else float("nan")
        )
        # Match MetricsCollector semantics: per-delivery averages are NaN
        # when the (rounded) expectation delivers nothing.
        latency = self.average_latency if delivered else float("nan")
        hops = self.model.mean_hops(self.window) if delivered else float("nan")
        return RunSummary(
            scenario=config.name,
            policy=config.policy,
            seed=config.seed,
            sim_time=config.sim_time,
            initial_copies=config.initial_copies,
            buffer_bytes=config.buffer_bytes,
            interval_range=config.interval_range,
            created=created,
            delivered=delivered,
            relayed=relayed,
            delivery_ratio=ratio,
            average_hopcount=hops,
            overhead_ratio=overhead,
            average_latency=latency,
            drops={},
            faults={},
            contacts=contacts,
            mean_intermeeting=self.meeting.mean_intermeeting,
            wall_seconds=self.wall_seconds,
            profile={},
        )

    # -- timeseries ----------------------------------------------------------

    def _delivered_by(self, now: float) -> float:
        """Expected deliveries completed by absolute time *now*."""
        w = min(now, self.window)
        tail = max(0.0, now - self.window) * self.model.ratio_at(self.window)
        return self.gen_rate * (self.model.int_cdf(w) + tail)

    def _relayed_by(self, now: float) -> float:
        """Expected completed transfers by *now* (spread + delivery hops)."""
        w = min(now, self.window)
        spread = self.model.int_copies(w) - w
        tail = max(0.0, now - self.window) * self._spread_per_message(
            self.window
        )
        return self.gen_rate * max(0.0, spread + tail) + self._delivered_by(now)

    def _live_copies(self, now: float) -> float:
        """Expected fleet-wide live copies at *now* (TTL-expired excluded)."""
        w = min(now, self.window)
        return self.gen_rate * self.model.int_copies(w)

    def _histogram(
        self, edges: tuple[float, ...], counts: list[int], n: int, mean: float
    ) -> dict[str, Any]:
        return {
            "edges": list(edges),
            "counts": counts,
            "n": n,
            "mean": mean,
        }

    def _latency_histogram(self, delivered: int) -> dict[str, Any]:
        """Delivered-latency histogram straight from the model CDF."""
        w = self.window
        bound = self.model.ratio_at(w)
        counts: list[int] = []
        # Cumulative rounding so the bin counts telescope to exactly
        # *delivered* (per-bin rounding can over- or undershoot the total).
        prev_cum = 0
        for edge in LATENCY_EDGES:
            mass = min(bound, self.model.ratio_at(min(edge, w)))
            cum = round(delivered * mass / bound) if bound > 0 else 0
            counts.append(cum - prev_cum)
            prev_cum = cum
        counts.append(max(0, delivered - prev_cum))
        mean = self.average_latency if delivered else 0.0
        return self._histogram(
            LATENCY_EDGES, counts, delivered, mean if delivered else 0.0
        )

    def _duration_histogram(self, relayed: int) -> dict[str, Any]:
        """Transfer durations are deterministic: size / bandwidth."""
        duration = self.config.message_size / self.config.bandwidth
        counts = [0] * (len(DURATION_EDGES) + 1)
        slot = len(DURATION_EDGES)
        for idx, edge in enumerate(DURATION_EDGES):
            if duration <= edge:
                slot = idx
                break
        counts[slot] = relayed
        return self._histogram(DURATION_EDGES, counts, relayed, duration)

    def timeseries(self, interval: float | None = None) -> dict[str, Any]:
        """The :meth:`TimeSeriesCollector.as_dict` payload, from the model."""
        if interval is None:
            interval = (
                self.config.obs_interval
                if self.config.obs_interval > 0
                else DEFAULT_OBS_INTERVAL
            )
        horizon = self.config.sim_time
        sample_times = [
            interval * k for k in range(1, int(horizon / interval) + 1)
        ]
        if not sample_times or horizon - sample_times[-1] > 1e-9:
            sample_times.append(horizon)

        columns = TimeSeriesCollector.column_names()
        samples: dict[str, list[float]] = {c: [] for c in columns}
        node_capacity = float(self.config.buffer_bytes)
        last_bytes = 0.0
        last_time = 0.0
        for now in sample_times:
            created = round(self.gen_rate * now)
            delivered = round(self._delivered_by(now))
            relayed = round(self._relayed_by(now))
            live_copies = self._live_copies(now)
            live_messages = self.gen_rate * min(now, self.window)
            used = live_copies * self.config.message_size
            occupancy = min(
                1.0, used / (self.config.n_nodes * node_capacity)
            )
            bytes_relayed = float(relayed * self.config.message_size)
            window = now - last_time if now > last_time else interval
            samples["time"].append(now)
            samples["created"].append(float(created))
            samples["delivered"].append(float(delivered))
            samples["relayed"].append(float(relayed))
            samples["delivery_ratio"].append(
                delivered / created if created else 0.0
            )
            for reason in DROP_REASONS:
                samples[f"drop_{reason}"].append(0.0)
            samples["drops_total"].append(0.0)
            samples["buffer_used_bytes"].append(used)
            samples["occupancy_mean"].append(occupancy)
            # The mean-field has no node heterogeneity; max == mean.
            samples["occupancy_max"].append(occupancy)
            samples["live_messages"].append(round(live_messages))
            samples["live_copies"].append(round(live_copies))
            samples["bytes_relayed"].append(bytes_relayed)
            samples["throughput_Bps"].append(
                (bytes_relayed - last_bytes) / window
            )
            samples["transfers_started"].append(float(relayed))
            samples["transfers_aborted"].append(0.0)
            samples["faults_total"].append(0.0)
            last_bytes = bytes_relayed
            last_time = now

        delivered_total = round(self._delivered_by(horizon))
        relayed_total = round(self._relayed_by(horizon))
        return {
            "interval": float(interval),
            "columns": list(columns),
            "samples": samples,
            "histograms": {
                "delivery_latency_s": self._latency_histogram(delivered_total),
                "transfer_duration_s": self._duration_histogram(relayed_total),
            },
            "faults_by_kind": {},
        }

    def write_timeseries(self, path: str | Path) -> None:
        """JSON export matching :meth:`TimeSeriesCollector.write_json`."""
        with Path(path).open("w", encoding="utf-8") as fh:
            json.dump(self.timeseries(), fh, indent=2, sort_keys=True)
            fh.write("\n")
