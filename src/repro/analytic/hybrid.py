"""Hybrid mode: analytic field, sampled discrete per-message outcomes.

``engine_backend="hybrid"`` keeps the mean-field machinery for everything
population-level (meeting rate, copy trajectories, relay counts) but
replaces the *expectation* delivery metrics with an empirical sample: a
set of discrete messages whose creation times follow the configured
traffic process and whose individual delays are inverse-CDF draws from the
fitted delay model.  The result is a :class:`~repro.reports.summary.RunSummary`
with the sampling noise of a real run — useful when downstream consumers
(confidence intervals, policy-comparison tests) need run-to-run variance a
pure expectation cannot provide.

Determinism contract: all draws come from two named
:class:`~repro.rng.RngFactory` streams derived from the scenario seed —
``analytic.hybrid.arrivals`` (message creation process) and
``analytic.hybrid.delays`` (per-message delay draws).  The same config
therefore yields bit-identical summaries, and the REP101 provenance lint
can see every draw's stream name.
"""

from __future__ import annotations

import math

from repro.analytic.result import AnalyticResult
from repro.reports.summary import RunSummary
from repro.rng import RngFactory

__all__ = ["HYBRID_MAX_MESSAGES", "hybrid_summary"]

#: Cap on sampled discrete messages.  Busier traffic processes are
#: subsampled (uniform creation times, outcome weights scaled back up) so
#: hybrid latency stays bounded at any horizon / generation rate.
HYBRID_MAX_MESSAGES = 4096


def _creation_times(result: AnalyticResult, rng: RngFactory) -> tuple[list[float], float]:
    """Sampled message creation times and the per-message weight.

    Mirrors :class:`repro.net.generator.MessageGenerator`: one fleet-wide
    stream of uniform inter-creation gaps.  When the expected message count
    exceeds :data:`HYBRID_MAX_MESSAGES`, creation times are instead a
    sorted uniform sample over the horizon with weight > 1.
    """
    config = result.config
    arrivals = rng.stream("analytic.hybrid.arrivals")
    lo, hi = config.interval_range
    expected = result.expected_created
    if expected > HYBRID_MAX_MESSAGES:
        draws = arrivals.uniform(0.0, config.sim_time, size=HYBRID_MAX_MESSAGES)
        times = sorted(float(t) for t in draws)
        return times, expected / HYBRID_MAX_MESSAGES
    times = []
    t = float(arrivals.uniform(lo, hi))
    while t < config.sim_time and len(times) < HYBRID_MAX_MESSAGES:
        times.append(t)
        t += float(arrivals.uniform(lo, hi))
    return times, 1.0


def hybrid_summary(result: AnalyticResult) -> RunSummary:
    """A :class:`RunSummary` with sampled delivery outcomes.

    Created/delivered counts and the latency mean come from the discrete
    sample; relay and contact accounting stay mean-field (per-message
    relay behaviour is not observable from a delay draw).
    """
    config = result.config
    rng = RngFactory(config.seed)
    times, weight = _creation_times(result, rng)
    delays = rng.stream("analytic.hybrid.delays")

    delivered = 0
    latency_total = 0.0
    for created_at in times:
        window = min(config.ttl, config.sim_time - created_at)
        if window <= 0:
            continue
        u = float(delays.random())
        delay = result.model.sample_delay(u, window)
        if delay is not None:
            delivered += 1
            latency_total += delay

    created_count = round(len(times) * weight)
    delivered_count = round(delivered * weight)
    ratio = delivered / len(times) if times else 0.0
    latency = latency_total / delivered if delivered else math.nan
    hops = (
        result.model.mean_hops(result.window)
        if delivered_count
        else math.nan
    )
    relayed = round(created_count * result.avg_spread()) + delivered_count
    overhead = (
        (relayed - delivered_count) / delivered_count
        if delivered_count
        else math.nan
    )
    pairs = config.n_nodes * (config.n_nodes - 1) / 2.0
    return RunSummary(
        scenario=config.name,
        policy=config.policy,
        seed=config.seed,
        sim_time=config.sim_time,
        initial_copies=config.initial_copies,
        buffer_bytes=config.buffer_bytes,
        interval_range=config.interval_range,
        created=created_count,
        delivered=delivered_count,
        relayed=relayed,
        delivery_ratio=ratio,
        average_hopcount=hops,
        overhead_ratio=overhead,
        average_latency=latency,
        drops={},
        faults={},
        contacts=round(result.meeting.rate * pairs * config.sim_time),
        mean_intermeeting=result.meeting.mean_intermeeting,
        wall_seconds=result.wall_seconds,
        profile={},
    )
