"""The common delay-model container both analytic models produce.

A :class:`DelayModel` is a delivery CDF ``F(t)`` for one *tagged message*
on a uniform age grid over the evaluation window ``W = min(TTL, horizon)``,
plus two companion trajectories: the expected number of live copies at age
``t`` (buffer-occupancy and relay accounting) and the expected relay-chain
depth of the copy that delivers at age ``t`` (hop-count accounting).

All scenario-level metrics are *horizon averages* over message creation
times: a message created at time ``s`` in a run of length ``T`` only has a
residual window ``w(s) = min(TTL, T − s)``, so

    delivery_ratio = (1/T) ∫₀ᵀ F(w(s)) ds

and similarly for the mean delay of delivered messages.  The closed forms
(docs/analytic.md) reduce every such average to the cached cumulative
integrals of ``F``, so queries are O(1) interpolations after the one-time
grid build.
"""

from __future__ import annotations

import math

import numpy as np
from numpy.typing import NDArray

from repro.errors import ConfigurationError

__all__ = ["DelayModel"]

FloatArray = NDArray[np.float64]

#: Default grid resolution (intervals) of the age axis.
GRID_POINTS = 512


def _cumtrapz(y: FloatArray, dt: float) -> FloatArray:
    """Cumulative trapezoid integral of *y* on a uniform grid (starts at 0)."""
    out = np.empty_like(y)
    out[0] = 0.0
    np.cumsum((y[1:] + y[:-1]) * (0.5 * dt), out=out[1:])
    return out


class DelayModel:
    """Delivery CDF + copy/depth trajectories on a uniform age grid."""

    def __init__(
        self,
        times: FloatArray,
        cdf: FloatArray,
        mean_copies: FloatArray,
        depth: FloatArray,
    ) -> None:
        if not (times.shape == cdf.shape == mean_copies.shape == depth.shape):
            raise ConfigurationError("delay-model grids must share one shape")
        if times.size < 2:
            raise ConfigurationError("delay-model grid needs >= 2 points")
        self.times = times
        self.cdf = cdf
        self.mean_copies = mean_copies
        self.depth = depth
        self.window = float(times[-1])
        dt = float(times[1] - times[0])
        self._dt = dt
        #: G(t) = ∫₀ᵗ F — the workhorse of every horizon average.
        self._int_cdf = _cumtrapz(cdf, dt)
        #: ∫₀ᵗ E[copies] — cohort-summed buffer occupancy.
        self._int_copies = _cumtrapz(mean_copies, dt)
        #: ∫₀ᵗ depth·dF and ∫₀ᵗ n·dF via midpoint flux weights.
        flux = np.diff(cdf)
        mid_depth = 0.5 * (depth[1:] + depth[:-1])
        self._int_depth_flux = np.concatenate(
            ([0.0], np.cumsum(mid_depth * flux))
        )

    # -- point queries -------------------------------------------------------

    def ratio_at(self, window: float) -> float:
        """F(w): delivery probability within a residual window."""
        return float(np.interp(window, self.times, self.cdf))

    def int_cdf(self, window: float) -> float:
        """G(w) = ∫₀ʷ F(t) dt."""
        return float(np.interp(window, self.times, self._int_cdf))

    def copies_at(self, window: float) -> float:
        """E[live copies] at message age *window*."""
        return float(np.interp(window, self.times, self.mean_copies))

    def int_copies(self, window: float) -> float:
        """∫₀ʷ E[copies](t) dt (per-message copy-seconds)."""
        return float(np.interp(window, self.times, self._int_copies))

    # -- horizon averages ----------------------------------------------------

    def _clamped_window(self, horizon: float, ttl: float) -> float:
        w = min(ttl, horizon, self.window)
        if w <= 0:
            raise ConfigurationError(
                f"empty evaluation window: horizon={horizon}, ttl={ttl}"
            )
        return w

    def horizon_delivery_ratio(self, horizon: float, ttl: float) -> float:
        """(1/T) ∫₀ᵀ F(min(ttl, T−s)) ds."""
        w = self._clamped_window(horizon, ttl)
        total = self.int_cdf(w) + (horizon - w) * self.ratio_at(w)
        return min(1.0, max(0.0, total / horizon))

    def horizon_mean_delay(self, horizon: float, ttl: float) -> float:
        """Mean latency of messages delivered within their residual window.

        Uses ``∫₀ʷ t·dF = w·F(w) − G(w)`` per creation time, averaged over
        the horizon, normalized by the averaged delivery probability.
        Returns NaN when (numerically) nothing is delivered.
        """
        w = self._clamped_window(horizon, ttl)
        # H(w) = ∫₀ʷ (u·F(u) − G(u)) du, computed on the grid up to w.
        mask = self.times <= w
        grid_t = self.times[mask]
        grid_num = grid_t * self.cdf[mask] - self._int_cdf[mask]
        # Trapezoid over the masked prefix plus the fractional last cell.
        inner = float(np.trapezoid(grid_num, dx=self._dt))
        last_t = float(grid_t[-1]) if grid_t.size else 0.0
        if w > last_t:
            num_w = w * self.ratio_at(w) - self.int_cdf(w)
            num_last = float(grid_num[-1]) if grid_num.size else 0.0
            inner += 0.5 * (num_w + num_last) * (w - last_t)
        num_at_w = w * self.ratio_at(w) - self.int_cdf(w)
        numerator = (inner + (horizon - w) * num_at_w) / horizon
        ratio = self.horizon_delivery_ratio(horizon, ttl)
        if ratio <= 0.0 or numerator <= 0.0:
            return float("nan")
        return numerator / ratio

    def mean_hops(self, window: float) -> float:
        """1 + E[depth of the delivering copy | delivered within *window*].

        NaN when nothing is delivered within the window.
        """
        w = min(window, self.window)
        flux = float(np.interp(w, self.times, self.cdf))
        if flux <= 0.0:
            return float("nan")
        depth = float(np.interp(w, self.times, self._int_depth_flux))
        return 1.0 + depth / flux

    # -- hybrid-mode sampling ------------------------------------------------

    def sample_delay(self, u: float, window: float) -> float | None:
        """Inverse-CDF draw: ``u`` ∈ [0,1) → delay, or None if undelivered.

        A draw above ``F(window)`` means the message misses its residual
        window.  Interpolation inverts the grid CDF, so equal seeds give
        equal delays — the hybrid determinism contract.
        """
        if not 0.0 <= u < 1.0 or math.isnan(u):
            raise ConfigurationError(f"inverse-CDF draw needs u in [0,1): {u}")
        w = min(window, self.window)
        bound = self.ratio_at(w)
        if u >= bound:
            return None
        return float(np.interp(u, self.cdf, self.times))
