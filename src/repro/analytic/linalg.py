"""Small dense matrix exponential (scaling-and-squaring Padé).

The binary-SnW delay model needs ``expm(Q·dt)`` for a generator matrix
whose entries span six orders of magnitude at million-node fleets (spread
rates ∝ λ·n·N, delivery rates ∝ λ·n).  Explicit time stepping would need
millions of steps for stability; the matrix exponential handles the
stiffness exactly, and the matrices are tiny (one row per spray copy, so
at most a few dozen), so Higham's [13/13] Padé approximant with scaling and
squaring costs microseconds.

Implemented here (pure NumPy) rather than via SciPy so the analytic
backend's core numerics are dependency-light, fully typed under
``mypy --strict``, and bit-reproducible on one platform — the service
cache's byte-identity contract extends to analytic results.
"""

from __future__ import annotations

import math

import numpy as np
from numpy.typing import NDArray

__all__ = ["expm"]

FloatArray = NDArray[np.float64]

#: Padé [13/13] numerator coefficients (Higham 2005, Table 10.4).
_PADE13 = (
    64764752532480000.0,
    32382376266240000.0,
    7771770303897600.0,
    1187353796428800.0,
    129060195264000.0,
    10559470521600.0,
    670442572800.0,
    33522128640.0,
    1323241920.0,
    40840800.0,
    960960.0,
    16380.0,
    182.0,
    1.0,
)
#: 1-norm threshold below which the [13/13] approximant is accurate
#: without scaling (Higham's θ₁₃).
_THETA13 = 5.371920351148152


def expm(a: FloatArray) -> FloatArray:
    """``e^A`` for a small square float64 matrix."""
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"expm needs a square matrix, got shape {a.shape}")
    n = a.shape[0]
    norm = float(np.linalg.norm(a, 1))
    squarings = 0
    if norm > _THETA13:
        squarings = max(0, int(math.ceil(math.log2(norm / _THETA13))))
    scaled = a / float(2**squarings)

    ident: FloatArray = np.eye(n, dtype=np.float64)
    a2 = scaled @ scaled
    a4 = a2 @ a2
    a6 = a4 @ a2
    b = _PADE13
    u = scaled @ (
        a6 @ (b[13] * a6 + b[11] * a4 + b[9] * a2)
        + b[7] * a6
        + b[5] * a4
        + b[3] * a2
        + b[1] * ident
    )
    v = (
        a6 @ (b[12] * a6 + b[10] * a4 + b[8] * a2)
        + b[6] * a6
        + b[4] * a4
        + b[2] * a2
        + b[0] * ident
    )
    result: FloatArray = np.linalg.solve(v - u, v + u)
    for _ in range(squarings):
        result = result @ result
    return result
