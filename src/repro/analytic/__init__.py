"""Mean-field analytical backend (``engine_backend="analytic"``).

The discrete simulator answers the paper's questions — delivery ratio,
delay, buffer occupancy versus copy budget L and buffer size — by walking
every contact of every node.  That caps usable fleet sizes around the
thousands even on the vector engine.  This package answers the *same
queries from closed-form / ODE mean-field models* in milliseconds at any
fleet size, and doubles as an independent oracle the simulator is
cross-validated against (``tests/analytic/test_cross_validation.py``).

Three model layers (docs/analytic.md has the derivations):

* :mod:`repro.analytic.meeting` — the pairwise intermeeting rate λ, either
  derived from the configured mobility model (Groenevelt's mean-field
  formula for waypoint mobilities) or calibrated from a short seeded
  simulator run (the taxi fleet's hotspot clustering defeats the uniform
  formula).
* :mod:`repro.analytic.snw` — the binary Spray-and-Wait delay distribution
  as the absorption time of a birth/absorption CTMC (Diana & Lochin,
  arXiv 1111.6860), solved exactly with a matrix exponential so million-node
  stiffness costs nothing.
* :mod:`repro.analytic.epidemic` — the epidemic infection / buffer
  occupancy / delivery reliability ODE system under finite buffers (Chen
  et al., arXiv 1601.06345), integrated with a fixed-step RK4 in scaled
  time for determinism.

:func:`repro.analytic.runner.run_analytic` evaluates a scenario config and
returns an :class:`~repro.analytic.result.AnalyticResult`, which renders
into the existing :class:`~repro.reports.summary.RunSummary` and
time-series shapes — the CLI, experiment presets, figure pipelines and the
``repro.service`` result cache all consume analytic results unchanged.

``engine_backend="hybrid"`` additionally samples a small set of discrete
per-message outcomes from the model's delay CDF via named RNG streams
(:mod:`repro.analytic.hybrid`), keeping the determinism contract: same
config, same bytes.
"""

from repro.analytic.meeting import MeetingRate, meeting_rate
from repro.analytic.result import AnalyticResult
from repro.analytic.runner import run_analytic

__all__ = [
    "AnalyticResult",
    "MeetingRate",
    "meeting_rate",
    "run_analytic",
]
