"""Epidemic-routing mean-field ODEs with finite buffers (arXiv 1601.06345).

Chen et al. describe epidemic flooding with the classic Kermack–McKendrick
pair, extended with a buffer-blocking factor ρ: a relay whose buffer is
full rejects the incoming copy, thinning the infection rate.  In scaled
time ``τ = λ·N·t`` (λ the pairwise meeting rate), with ``i`` the infected
fraction for one tagged message and ``P`` its delivery reliability:

    di/dτ = (1 − ρ) · i · (1 − i)        i(0) = 1/N
    dP/dτ = i · (1 − P)                  P(0) = 0

ρ itself depends on how full buffers are, which depends on ``i`` — a fixed
point.  We resolve it with a damped outer iteration (deterministic, fixed
count): integrate the ODEs for a given ρ, compute the per-node expected
buffer occupancy ``x = γ · ∫₀ᵂ i(a) da`` (γ = fleet message-creation
rate: each live message of age ``a`` holds ``N·i(a)`` copies fleet-wide,
i.e. ``i(a)`` per node), compare against the copy capacity
``C = buffer_bytes / message_size`` and update ``ρ ← max(0, 1 − C/x)``.

Integration is a fixed-step RK4 on a uniform τ-grid over the *active
window* ``τ_a = min(τ_end, 4·ln N + 50)`` — the logistic transient is over
by ``2·ln N``; past the window ``i`` is frozen and ``P`` extended with the
exact constant-``i`` solution ``P(τ) = 1 − (1 − P_a)·e^{−i_a(τ−τ_a)}``.
This keeps step counts (and hence determinism and latency) independent of
fleet size: a million-node query integrates the same ~4k steps as a
ten-node one.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analytic.model import GRID_POINTS, DelayModel, FloatArray
from repro.errors import ConfigurationError

__all__ = ["epidemic_delay_model"]

#: RK4 steps across the active scaled-time window.
_RK4_STEPS = 4096
#: Damped fixed-point iterations for the blocking factor ρ.
_RHO_ITERATIONS = 8
#: ρ ceiling — total blocking would freeze the ODE at i = 1/N and hide
#: configuration mistakes; realistic congestion stays well below this.
_RHO_MAX = 0.95


def _integrate(
    n_nodes: int, rho: float, tau_active: float
) -> tuple[FloatArray, FloatArray, FloatArray]:
    """RK4 for (i, P) on [0, τ_active]; returns (τ grid, i, P)."""
    taus = np.linspace(0.0, tau_active, _RK4_STEPS + 1, dtype=np.float64)
    h = tau_active / _RK4_STEPS
    i_vals = np.empty(_RK4_STEPS + 1, dtype=np.float64)
    p_vals = np.empty(_RK4_STEPS + 1, dtype=np.float64)
    thin = 1.0 - rho

    def deriv(i: float, p: float) -> tuple[float, float]:
        return thin * i * (1.0 - i), i * (1.0 - p)

    i, p = 1.0 / n_nodes, 0.0
    i_vals[0], p_vals[0] = i, p
    for k in range(_RK4_STEPS):
        k1i, k1p = deriv(i, p)
        k2i, k2p = deriv(i + 0.5 * h * k1i, p + 0.5 * h * k1p)
        k3i, k3p = deriv(i + 0.5 * h * k2i, p + 0.5 * h * k2p)
        k4i, k4p = deriv(i + h * k3i, p + h * k3p)
        i += (h / 6.0) * (k1i + 2.0 * k2i + 2.0 * k3i + k4i)
        p += (h / 6.0) * (k1p + 2.0 * k2p + 2.0 * k3p + k4p)
        i = min(1.0, max(0.0, i))
        p = min(1.0, max(0.0, p))
        i_vals[k + 1], p_vals[k + 1] = i, p
    return taus, i_vals, p_vals


def _infection_at(
    tau: FloatArray, taus: FloatArray, i_vals: FloatArray
) -> FloatArray:
    """i(τ) on an arbitrary grid: interpolate inside, freeze beyond."""
    out: FloatArray = np.interp(tau, taus, i_vals)
    return out


def _reliability_at(
    tau: FloatArray, taus: FloatArray, i_vals: FloatArray, p_vals: FloatArray
) -> FloatArray:
    """P(τ): interpolated inside the window, constant-i tail beyond."""
    tau_a = float(taus[-1])
    out: FloatArray = np.interp(tau, taus, p_vals)
    beyond = tau > tau_a
    if bool(np.any(beyond)):
        i_a = float(i_vals[-1])
        p_a = float(p_vals[-1])
        out[beyond] = 1.0 - (1.0 - p_a) * np.exp(-i_a * (tau[beyond] - tau_a))
    return out


def epidemic_delay_model(
    *,
    n_nodes: int,
    rate: float,
    window: float,
    gen_rate: float,
    buffer_capacity_msgs: float,
    grid_points: int = GRID_POINTS,
) -> tuple[DelayModel, float]:
    """Epidemic delay model plus the converged blocking factor ρ.

    ``gen_rate`` is the fleet-wide message-creation rate (messages per
    second); ``buffer_capacity_msgs`` the per-node buffer capacity in
    message slots.  Infinite capacity (or zero traffic) gives ρ = 0 — the
    classic unblocked epidemic.
    """
    if n_nodes < 2:
        raise ConfigurationError(f"n_nodes must be >= 2: {n_nodes}")
    if rate <= 0 or not math.isfinite(rate):
        raise ConfigurationError(f"meeting rate must be positive: {rate}")
    if window <= 0 or not math.isfinite(window):
        raise ConfigurationError(f"window must be positive finite: {window}")
    if gen_rate < 0:
        raise ConfigurationError(f"gen_rate must be >= 0: {gen_rate}")
    if buffer_capacity_msgs < 1:
        raise ConfigurationError(
            f"buffer must hold at least one message: {buffer_capacity_msgs}"
        )

    tau_end = rate * n_nodes * window
    tau_active = min(tau_end, 4.0 * math.log(n_nodes) + 50.0)

    rho = 0.0
    taus, i_vals, p_vals = _integrate(n_nodes, rho, tau_active)
    for _ in range(_RHO_ITERATIONS):
        # Per-node expected occupancy: γ·∫₀ᵂ i(a) da in *real* seconds.
        # ∫ i dτ inside the window plus the frozen tail beyond it.
        int_i_tau = float(np.trapezoid(i_vals, taus))
        if tau_end > tau_active:
            int_i_tau += float(i_vals[-1]) * (tau_end - tau_active)
        occupancy = gen_rate * int_i_tau / (rate * n_nodes)
        target = (
            0.0
            if occupancy <= buffer_capacity_msgs
            else min(_RHO_MAX, 1.0 - buffer_capacity_msgs / occupancy)
        )
        new_rho = 0.5 * rho + 0.5 * target
        if abs(new_rho - rho) < 1e-9:
            rho = new_rho
            break
        rho = new_rho
        taus, i_vals, p_vals = _integrate(n_nodes, rho, tau_active)

    times = np.linspace(0.0, window, grid_points + 1, dtype=np.float64)
    tau_grid = times * rate * n_nodes
    cdf = _reliability_at(tau_grid, taus, i_vals, p_vals)
    np.maximum.accumulate(cdf, out=cdf)
    infection = _infection_at(tau_grid, taus, i_vals)
    mean_copies = np.maximum(1.0, n_nodes * infection)
    # Infection spreads as a (roughly) binary tree over holders, so the
    # relay chain behind the delivering copy is ~log2 of the live copies.
    depth = np.log2(mean_copies)
    model = DelayModel(
        times=times, cdf=cdf, mean_copies=mean_copies, depth=depth
    )
    return model, rho
