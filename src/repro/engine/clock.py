"""Simulation clock.

A tiny mutable wrapper around the current simulation time, shared by every
component so that "now" has a single source of truth.  Only the simulator's
main loop advances it.
"""

from __future__ import annotations

from repro.errors import SimulationError


class Clock:
    """Monotonically advancing simulation time in seconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Move the clock forward to *time*.

        Raises :class:`SimulationError` on attempts to move backwards — that
        always indicates an event-ordering bug.
        """
        if time < self._now:
            raise SimulationError(
                f"clock cannot move backwards: {time} < {self._now}"
            )
        self._now = float(time)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Clock t={self._now:.3f}>"
