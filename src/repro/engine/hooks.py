"""Listener registry — the simulator's publish/subscribe spine.

Reports, metrics collectors and tests observe the simulation through typed
topics rather than by monkey-patching components.  Topics used by the core
library:

``message.created``      (message)
``message.relayed``      (message, from_node, to_node, is_delivery)
``message.delivered``    (message, from_node, to_node)   — first delivery only
``message.dropped``      (message, node, reason)         — reason: one of
                         :data:`repro.net.outcomes.DROP_REASONS`
                         ("overflow" | "ttl" | "no_room" | "fault")
``message.expired``      (message, node)                 — TTL drops (also emitted as dropped/ttl)
``transfer.started``     (transfer)
``transfer.commit``      (transfer)  — spray-token halving about to apply
``transfer.aborted``     (transfer)
``link.up``              (node_a, node_b)
``link.down``            (node_a, node_b)
``world.updated``        (time)
``fault.injected``       (kind, time)

Listeners fire in registration order; exceptions propagate (a broken listener
should fail the run loudly rather than silently skew metrics).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable
from typing import Any


class ListenerRegistry:
    """Maps topic names to ordered listener lists."""

    def __init__(self) -> None:
        self._listeners: dict[str, list[Callable[..., None]]] = defaultdict(list)

    def subscribe(self, topic: str, listener: Callable[..., None]) -> None:
        """Register *listener* for *topic* (duplicates allowed, fire twice)."""
        self._listeners[topic].append(listener)

    def unsubscribe(self, topic: str, listener: Callable[..., None]) -> None:
        """Remove the first registration of *listener* on *topic*."""
        self._listeners[topic].remove(listener)

    def emit(self, topic: str, *args: Any) -> None:
        """Invoke all listeners registered for *topic*."""
        for listener in self._listeners.get(topic, ()):
            listener(*args)

    def has_listeners(self, topic: str) -> bool:
        """True if at least one listener is registered for *topic*."""
        return bool(self._listeners.get(topic))
