"""Event objects and the central event queue.

Events are ordered by ``(time, priority, sequence)``.  The sequence number is
a monotonically increasing tie-breaker so that two events scheduled for the
same instant at the same priority fire in scheduling order (FIFO), which keeps
runs deterministic.

Cancellation is O(1) lazy: cancelled events stay in the heap but are skipped
on pop.  This is the standard approach for simulators with frequent
reschedules (e.g. transfer completions aborted by link-down).
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from typing import Any

from repro.errors import SchedulingError

#: Default event priority. Lower values fire first at equal times.
PRIORITY_NORMAL = 0
#: Priority for world updates — they run *before* normal events at the same
#: timestamp so that connectivity is current when message logic fires.
PRIORITY_WORLD = -10
#: Priority for fault injection — after the world rewires connectivity but
#: before message logic, so outages/flaps apply to the current link set.
PRIORITY_FAULT = -5
#: Priority for end-of-step bookkeeping (reports sample after message logic).
PRIORITY_REPORT = 10
#: Priority for state snapshots — strictly after *everything* else at the
#: same instant, so a snapshot taken at time T sees every same-time event
#: already applied and every pending event strictly in the future.
PRIORITY_SNAPSHOT = 100


class Event:
    """A scheduled callback.

    Instances are created via :meth:`EventQueue.schedule`; user code holds the
    returned handle only to :meth:`cancel` it.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...],
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so it will be skipped when popped."""
        self.cancelled = True

    def sort_key(self) -> tuple[float, int, int]:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"<Event t={self.time:.3f} p={self.priority} {name} {state}>"


class EventQueue:
    """Min-heap of :class:`Event` with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def schedule(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule *callback(*args)* to fire at *time*.

        Raises :class:`SchedulingError` for non-finite times; scheduling into
        the past is the caller's responsibility (the :class:`Simulator`
        enforces it against its clock).
        """
        if time != time or time in (float("inf"), float("-inf")):
            raise SchedulingError(f"event time must be finite, got {time!r}")
        event = Event(float(time), priority, next(self._counter), callback, args)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def peek_time(self) -> float | None:
        """Time of the next live event, or None if empty."""
        self._discard_cancelled()
        return self._heap[0].time if self._heap else None

    def pop(self) -> Event | None:
        """Pop and return the next live event, or None if empty."""
        self._discard_cancelled()
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)
        self._live -= 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (idempotent)."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()
        self._live = 0

    def _discard_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
