"""The simulation main loop.

:class:`Simulator` owns the clock, the event queue and the listener registry.
Components (the world, message generators, the transfer manager) register
events against it.  The loop is a plain "pop next event, advance clock, fire"
discrete-event loop; the ONE-style time-stepped behaviour comes from the
world registering a recurring update event at :attr:`tick` intervals with
:data:`~repro.engine.events.PRIORITY_WORLD` so movement/connectivity is
refreshed before message logic at the same instant.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from typing import TYPE_CHECKING, Any

from repro.engine.clock import Clock
from repro.engine.events import PRIORITY_NORMAL, Event, EventQueue
from repro.engine.hooks import ListenerRegistry
from repro.errors import SchedulingError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.profiler import PhaseProfiler


class _Recurring:
    """Book-keeping for one :meth:`Simulator.schedule_every` chain.

    Tracks the next scheduled firing time so a snapshot can re-arm the chain
    at the *exact* float it would have fired at (repeated ``now + interval``
    addition drifts, so next times cannot be recomputed as ``k * interval``).
    """

    __slots__ = ("interval", "callback", "args", "priority", "next_time")

    def __init__(
        self,
        interval: float,
        callback: Callable[..., None],
        args: tuple[Any, ...],
        priority: int,
    ) -> None:
        self.interval = interval
        self.callback = callback
        self.args = args
        self.priority = priority
        #: Time of the next pending firing (NaN once the chain has run past
        #: the horizon and stopped re-arming itself).
        self.next_time = float("nan")


class Simulator:
    """Event loop with a shared clock and pub/sub registry.

    Parameters
    ----------
    end_time:
        Simulation horizon in seconds.  Events scheduled past the horizon are
        accepted but never fire.
    sanitize:
        Request runtime invariant checking (see
        :mod:`repro.analysis.sanitizer`).  ``None`` (the default) defers to
        the ``REPRO_SANITIZE`` environment variable ("1"/"true"/"yes" enable
        it).  The flag only records intent — scenario builders consult
        :attr:`sanitize` and install the sanitizer listeners; a bare
        Simulator does not check anything by itself.
    """

    def __init__(self, end_time: float, sanitize: bool | None = None) -> None:
        if end_time <= 0:
            raise SchedulingError(f"end_time must be positive, got {end_time}")
        self.end_time = float(end_time)
        if sanitize is None:
            env = os.environ.get("REPRO_SANITIZE", "").strip().lower()
            sanitize = env in ("1", "true", "yes")
        self.sanitize = bool(sanitize)
        self.clock = Clock(0.0)
        self.queue = EventQueue()
        self.listeners = ListenerRegistry()
        #: Optional per-subsystem wall-time accounting (see
        #: :mod:`repro.obs.profiler`).  ``None`` keeps the hot path free of
        #: timing overhead; instrumented call sites check this attribute.
        self.profiler: "PhaseProfiler | None" = None
        self._running = False
        self._events_processed = 0
        #: Named recurring event chains (see :meth:`schedule_every`); used by
        #: :mod:`repro.snapshot` to capture and re-arm periodic callbacks.
        self._recurring: dict[str, _Recurring] = {}

    # -- scheduling -------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self.clock.now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (diagnostics / benchmarks)."""
        return self._events_processed

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule an absolute-time event; must not be in the past."""
        if time < self.clock.now:
            raise SchedulingError(
                f"cannot schedule at {time} (now={self.clock.now})"
            )
        return self.queue.schedule(time, callback, *args, priority=priority)

    def schedule_in(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule an event *delay* seconds from now; delay must be >= 0."""
        if delay < 0:
            raise SchedulingError(f"delay must be non-negative, got {delay}")
        return self.queue.schedule(
            self.clock.now + delay, callback, *args, priority=priority
        )

    def schedule_every(
        self,
        interval: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
        start: float | None = None,
        name: str | None = None,
    ) -> None:
        """Schedule *callback* at fixed intervals until the horizon.

        The callback is re-armed after each firing, so a callback that raises
        stops its own recurrence (and the run).  Passing *name* registers the
        chain in :attr:`_recurring` so snapshot/restore can re-arm it at the
        exact pending firing time.
        """
        if interval <= 0:
            raise SchedulingError(f"interval must be positive, got {interval}")
        first = self.clock.now if start is None else start
        rec = _Recurring(float(interval), callback, args, priority)
        if name is not None:
            self._recurring[name] = rec
        rec.next_time = float(first)
        self.schedule_at(first, self._fire_recurring, rec, priority=priority)

    def _fire_recurring(self, rec: _Recurring) -> None:
        rec.callback(*rec.args)
        next_time = self.clock.now + rec.interval
        if next_time <= self.end_time:
            rec.next_time = next_time
            self.queue.schedule(
                next_time, self._fire_recurring, rec, priority=rec.priority
            )
        else:
            rec.next_time = float("nan")

    def rearm_recurring(self, name: str, next_time: float) -> None:
        """Re-schedule the named recurring chain at *next_time* (restore path).

        A NaN *next_time* means the chain had already run past the horizon
        when the snapshot was taken and stays dead; a finite time past the
        (possibly overridden) horizon is parked as NaN without scheduling.
        """
        rec = self._recurring[name]
        if next_time != next_time:  # NaN: chain was exhausted at capture
            return
        if next_time > self.end_time:
            rec.next_time = float("nan")
            return
        rec.next_time = float(next_time)
        self.schedule_at(next_time, self._fire_recurring, rec, priority=rec.priority)

    # -- running ----------------------------------------------------------

    def run(self, until: float | None = None) -> None:
        """Process events in order until *until* (default: the horizon).

        May be called repeatedly with increasing ``until`` values to run the
        simulation in slices (used by live reports and tests).
        """
        horizon = self.end_time if until is None else min(until, self.end_time)
        self._running = True
        stopped = False
        try:
            while True:
                if not self._running:
                    stopped = True
                    break
                next_time = self.queue.peek_time()
                if next_time is None or next_time > horizon:
                    break
                event = self.queue.pop()
                assert event is not None  # peek said non-empty
                self.clock.advance_to(event.time)
                self._events_processed += 1
                event.callback(*event.args)
        finally:
            self._running = False
        # stop() freezes time where it is; a drained queue runs out the clock.
        if not stopped and self.clock.now < horizon:
            self.clock.advance_to(horizon)

    def stop(self) -> None:
        """Stop the loop after the currently firing event returns."""
        self._running = False
