"""Discrete-event simulation engine.

The engine is a hybrid of the two classic simulator styles, matching the ONE
simulator's semantics:

* a **time-stepped** world update (node movement + connectivity detection)
  registered as a recurring event, and
* an **event-driven** core (:class:`EventQueue`) for everything with an exact
  time: message generation, transfer completions, TTL expiry, report samples.

Public API:

* :class:`repro.engine.events.Event` / :class:`repro.engine.events.EventQueue`
* :class:`repro.engine.clock.Clock`
* :class:`repro.engine.simulator.Simulator`
* :class:`repro.engine.hooks.ListenerRegistry`
"""

from repro.engine.clock import Clock
from repro.engine.events import Event, EventQueue
from repro.engine.hooks import ListenerRegistry
from repro.engine.simulator import Simulator

__all__ = ["Clock", "Event", "EventQueue", "ListenerRegistry", "Simulator"]
