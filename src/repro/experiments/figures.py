"""Figure/table generators — one entry point per paper artifact.

Every generator supports two scales:

* ``full=True`` — the paper's exact parameter grids (Tables II/III): 18000 s,
  100/200 nodes, 13-point copies sweep, 7-point buffer sweep, 8-point rate
  sweep.  Hours of CPU serially; use ``workers`` to parallelize.
* ``full=False`` (default) — a density/congestion-preserving reduction (see
  :func:`repro.experiments.scenario.scale_scenario`) with a coarser grid.
  Minutes on a laptop, preserves the paper's orderings (EXPERIMENTS.md
  records the comparison).

Returned :class:`FigureData` holds one series per policy per metric and can
render itself as the text table the benchmarks print.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.analysis.fitting import ExponentialFit, fit_exponential
from repro.analysis.taylor import priority_curve
from repro.experiments.runner import run_scenario
from repro.experiments.scenario import (
    ScenarioConfig,
    epfl_scenario,
    random_waypoint_scenario,
    scale_scenario,
)
from repro.experiments.sweep import replicate, run_many, summarize_replicates
from repro.faults.plan import FaultPlan
from repro.reports.summary import FailedRun, RunSummary
from repro.units import megabytes

#: The four buffer-management strategies the paper compares (Sec. IV-A).
PAPER_POLICIES: tuple[str, ...] = ("fifo", "snw-o", "snw-c", "sdsrp")
#: The paper's three headline metrics (Sec. IV-A).
PAPER_METRICS: tuple[str, ...] = (
    "delivery_ratio",
    "average_hopcount",
    "overhead_ratio",
)

# -- the paper's parameter grids (Tables II/III) -----------------------------

FULL_COPIES = tuple(range(16, 65, 4))  # 16, 20, ..., 64
FULL_BUFFERS_MB = (2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0)
FULL_RATES = tuple((float(a), float(a + 5)) for a in range(10, 50, 5))
#: Churn axis (robustness extension, not in the paper): fraction of nodes
#: cycling offline/online on a 1/5-horizon duty cycle (1 h at paper scale).
FULL_CHURN = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)

REDUCED_COPIES = (16, 32, 48, 64)
REDUCED_BUFFERS_MB = (2.0, 3.0, 4.0, 5.0)
REDUCED_RATES = ((10.0, 15.0), (20.0, 25.0), (30.0, 35.0), (45.0, 50.0))
REDUCED_CHURN = (0.0, 0.2, 0.4)

#: Reduction factors used when full=False.
REDUCED_NODE_FACTOR = 0.4
REDUCED_TIME_FACTOR = 1.0 / 3.0
#: Congestion calibration (see scale_scenario): chosen so the FIFO baseline
#: lands in the paper's observed delivery-ratio band (~0.3) at the reduced
#: scale, which is where the reported orderings live.
REDUCED_INTERVAL_FACTOR = 2.5


@dataclass
class FigureData:
    """Series data for one paper figure (a row of 3 subplots)."""

    figure: str
    x_label: str
    x_values: list[Any]
    #: policy -> metric -> list aligned with x_values.
    series: dict[str, dict[str, list[float]]]
    #: policy -> metric -> per-x lists of raw replicate summaries.
    raw: dict[str, list[list[RunSummary]]] = field(default_factory=dict)
    #: Runs that produced no summary (crash-safe sweeps; empty otherwise).
    failures: list[FailedRun] = field(default_factory=list)

    def metric_table(self, metric: str) -> str:
        """Text table: one row per policy, one column per x value."""
        header = f"{self.figure} — {metric} vs {self.x_label}"
        xcols = " ".join(f"{self._fmt_x(x):>11}" for x in self.x_values)
        lines = [header, f"{'policy':<10} {xcols}"]
        for policy, metrics in self.series.items():
            vals = " ".join(f"{v:>11.3f}" for v in metrics[metric])
            lines.append(f"{policy:<10} {vals}")
        return "\n".join(lines)

    @staticmethod
    def _fmt_x(x: Any) -> str:
        if isinstance(x, tuple):
            return f"[{x[0]:.0f},{x[1]:.0f}]"
        return str(x)

    def best_policy(self, metric: str, prefer: str = "max") -> list[str]:
        """Winning policy at each x (ties broken by series order)."""
        out = []
        for i in range(len(self.x_values)):
            pick: tuple[float, str] | None = None
            for policy, metrics in self.series.items():
                v = metrics[metric][i]
                if math.isnan(v):
                    continue
                key = v if prefer == "max" else -v
                if pick is None or key > pick[0]:
                    pick = (key, policy)
            out.append(pick[1] if pick else "n/a")
        return out


def reduced(
    base: ScenarioConfig,
    node_factor: float | None = None,
    time_factor: float | None = None,
) -> ScenarioConfig:
    """The calibrated reduced-scale variant of a paper scenario.

    Applies the module's reduction factors (density/congestion preserving,
    see :func:`~repro.experiments.scenario.scale_scenario`) so callers — the
    CLI's ``--reduced`` flag, benchmarks, docs examples — all land on the
    same operating point.
    """
    return scale_scenario(
        base,
        node_factor=REDUCED_NODE_FACTOR if node_factor is None else node_factor,
        time_factor=REDUCED_TIME_FACTOR if time_factor is None else time_factor,
        interval_factor=REDUCED_INTERVAL_FACTOR,
    )


#: Deprecated private alias of :func:`reduced` (kept for old callers).
_reduced = reduced


def _sweep_figure(
    figure: str,
    base: ScenarioConfig,
    x_label: str,
    x_values: Sequence[Any],
    apply_x: Callable[[ScenarioConfig, Any], ScenarioConfig],
    policies: Sequence[str],
    replicates: int,
    workers: int | None,
    retries: int = 0,
    timeout: float | None = None,
    resume: str | None = None,
) -> FigureData:
    """Run the (policy × x × replicate) grid and aggregate.

    With ``retries``/``timeout``/``resume`` set, the sweep runs on the
    crash-safe path: failed grid points become :class:`FailedRun` entries in
    :attr:`FigureData.failures` instead of aborting the whole grid, and an
    interrupted sweep resumes from the ``resume`` checkpoint file.
    """
    configs: list[ScenarioConfig] = []
    index: list[tuple[str, int]] = []
    for policy in policies:
        for xi, x in enumerate(x_values):
            cfg = apply_x(base.replace(policy=policy), x)
            for rep_cfg in replicate(cfg, replicates):
                configs.append(rep_cfg)
                index.append((policy, xi))
    summaries = run_many(
        configs, workers=workers,
        retries=retries, timeout=timeout, checkpoint=resume,
    )

    failures: list[FailedRun] = []
    grid: dict[str, list[list[RunSummary]]] = {
        p: [[] for _ in x_values] for p in policies
    }
    for (policy, xi), summary in zip(index, summaries):
        if isinstance(summary, FailedRun):
            failures.append(summary)
        else:
            grid[policy][xi].append(summary)

    series = {
        policy: {
            metric: [
                summarize_replicates(grid[policy][xi], metric)
                for xi in range(len(x_values))
            ]
            for metric in PAPER_METRICS
        }
        for policy in policies
    }
    return FigureData(
        figure=figure,
        x_label=x_label,
        x_values=list(x_values),
        series=series,
        raw=grid,
        failures=failures,
    )


# -- Fig. 8 (random-waypoint) and Fig. 9 (EPFL substitute) --------------------


def _axis_plan(
    base: ScenarioConfig, axis: str, full: bool, node_factor: float
) -> tuple[str, Sequence[Any], Callable[[ScenarioConfig, Any], ScenarioConfig]]:
    """One sweep axis as ``(x_label, x_values, apply_x)``.

    Shared by the simulated sweeps and the ``fig-validate`` analytic
    overlay so both evaluate *exactly* the same grid points.
    """
    if axis == "copies":
        values: Sequence[Any] = FULL_COPIES if full else REDUCED_COPIES
        # x values stay in paper units; the applied L scales with the fleet
        # so L/N (spray saturation) matches the paper's operating points.
        return (
            "initial copies L", values,
            lambda c, x: c.replace(initial_copies=max(2, round(x * node_factor))),
        )
    if axis == "buffer":
        values = FULL_BUFFERS_MB if full else REDUCED_BUFFERS_MB
        return (
            "buffer size (MB)", values,
            lambda c, x: c.replace(buffer_bytes=megabytes(x)),
        )
    if axis == "rate":
        values = FULL_RATES if full else REDUCED_RATES
        # The reduction rescales interval_range to keep per-node load; apply
        # the same factor to each swept interval (both presets start at
        # [25, 35], so the factor is base.interval[0]/25).
        scale = base.interval_range[0] / 25.0
        return (
            "generation interval (s)", values,
            lambda c, x: c.replace(interval_range=(x[0] * scale, x[1] * scale)),
        )
    if axis == "churn":
        values = FULL_CHURN if full else REDUCED_CHURN
        # Robustness extension: x is the churned fleet fraction on a
        # 1/5-horizon duty cycle (1 h off / 1 h on at paper scale).
        duty = base.sim_time / 5.0
        return (
            "churned node fraction", values,
            lambda c, x: c.replace(
                faults=FaultPlan(
                    churn_fraction=x, churn_off_time=duty, churn_on_time=duty
                )
            ) if x else c,
        )
    raise ValueError(f"unknown axis {axis!r}")


def _metric_sweep(
    figure: str,
    base: ScenarioConfig,
    axis: str,
    full: bool,
    policies: Sequence[str],
    replicates: int,
    workers: int | None,
    seed: int,
    node_factor: float | None = None,
    time_factor: float | None = None,
    retries: int = 0,
    timeout: float | None = None,
    resume: str | None = None,
) -> FigureData:
    original_nodes = base.n_nodes
    base = base.replace(seed=seed)
    if not full:
        base = reduced(base, node_factor, time_factor)
    x_label, values, apply_x = _axis_plan(
        base, axis, full, base.n_nodes / original_nodes
    )
    return _sweep_figure(
        figure, base, x_label, values, apply_x, policies, replicates,
        workers, retries=retries, timeout=timeout, resume=resume,
    )


def fig8_copies(full: bool = False, policies: Sequence[str] = PAPER_POLICIES,
                replicates: int = 1, workers: int | None = None,
                seed: int = 1, node_factor: float | None = None,
                time_factor: float | None = None, **resilience: Any) -> FigureData:
    """Fig. 8(a-c): RWP metrics vs initial copies (buffer 2.5 MB, rate 25-35 s).

    All ``fig8_*``/``fig9_*`` generators accept the crash-safe sweep options
    ``retries=N``, ``timeout=SECONDS`` and ``resume=PATH`` (see
    :func:`repro.experiments.sweep.run_many`).
    """
    return _metric_sweep("fig8(a-c)", random_waypoint_scenario(), "copies",
                         full, policies, replicates, workers, seed,
                         node_factor, time_factor, **resilience)


def fig8_buffer(full: bool = False, policies: Sequence[str] = PAPER_POLICIES,
                replicates: int = 1, workers: int | None = None,
                seed: int = 1, node_factor: float | None = None,
                time_factor: float | None = None, **resilience: Any) -> FigureData:
    """Fig. 8(d-f): RWP metrics vs buffer size (L=32, rate 25-35 s)."""
    return _metric_sweep("fig8(d-f)", random_waypoint_scenario(), "buffer",
                         full, policies, replicates, workers, seed,
                         node_factor, time_factor, **resilience)


def fig8_rate(full: bool = False, policies: Sequence[str] = PAPER_POLICIES,
              replicates: int = 1, workers: int | None = None,
              seed: int = 1, node_factor: float | None = None,
              time_factor: float | None = None, **resilience: Any) -> FigureData:
    """Fig. 8(g-i): RWP metrics vs generation interval (L=32, 2.5 MB)."""
    return _metric_sweep("fig8(g-i)", random_waypoint_scenario(), "rate",
                         full, policies, replicates, workers, seed,
                         node_factor, time_factor, **resilience)


def fig8_churn(full: bool = False, policies: Sequence[str] = PAPER_POLICIES,
               replicates: int = 1, workers: int | None = None,
               seed: int = 1, node_factor: float | None = None,
               time_factor: float | None = None, **resilience: Any) -> FigureData:
    """Robustness extension: RWP metrics vs churned node fraction.

    Not a paper figure — it answers "how does SDSRP's priority ranking
    degrade under node churn?" by cycling a growing fraction of the fleet
    off/on (1/5-horizon duty cycle) under otherwise Table-II conditions.
    """
    return _metric_sweep("fig8(churn)", random_waypoint_scenario(), "churn",
                         full, policies, replicates, workers, seed,
                         node_factor, time_factor, **resilience)


def fig9_copies(full: bool = False, policies: Sequence[str] = PAPER_POLICIES,
                replicates: int = 1, workers: int | None = None,
                seed: int = 1, node_factor: float | None = None,
                time_factor: float | None = None, **resilience: Any) -> FigureData:
    """Fig. 9(a-c): taxi-trace metrics vs initial copies."""
    return _metric_sweep("fig9(a-c)", epfl_scenario(), "copies",
                         full, policies, replicates, workers, seed,
                         node_factor, time_factor, **resilience)


def fig9_buffer(full: bool = False, policies: Sequence[str] = PAPER_POLICIES,
                replicates: int = 1, workers: int | None = None,
                seed: int = 1, node_factor: float | None = None,
                time_factor: float | None = None, **resilience: Any) -> FigureData:
    """Fig. 9(d-f): taxi-trace metrics vs buffer size."""
    return _metric_sweep("fig9(d-f)", epfl_scenario(), "buffer",
                         full, policies, replicates, workers, seed,
                         node_factor, time_factor, **resilience)


def fig9_rate(full: bool = False, policies: Sequence[str] = PAPER_POLICIES,
              replicates: int = 1, workers: int | None = None,
              seed: int = 1, node_factor: float | None = None,
              time_factor: float | None = None, **resilience: Any) -> FigureData:
    """Fig. 9(g-i): taxi-trace metrics vs generation interval."""
    return _metric_sweep("fig9(g-i)", epfl_scenario(), "rate",
                         full, policies, replicates, workers, seed,
                         node_factor, time_factor, **resilience)


def fig9_churn(full: bool = False, policies: Sequence[str] = PAPER_POLICIES,
               replicates: int = 1, workers: int | None = None,
               seed: int = 1, node_factor: float | None = None,
               time_factor: float | None = None, **resilience: Any) -> FigureData:
    """Robustness extension: taxi-trace metrics vs churned node fraction."""
    return _metric_sweep("fig9(churn)", epfl_scenario(), "churn",
                         full, policies, replicates, workers, seed,
                         node_factor, time_factor, **resilience)


# -- fig-validate: analytic overlay on the simulated sweeps -------------------

#: Series key of the analytic overlay in fig-validate figures.
ANALYTIC_SERIES = "analytic"
#: Axes fig-validate supports — churn is excluded because the analytic
#: backend (by validation) cannot model fault injection.
VALIDATE_AXES = ("copies", "buffer", "rate")


def fig_validate(
    scenario: str = "rwp",
    axis: str = "copies",
    full: bool = False,
    policies: Sequence[str] = PAPER_POLICIES,
    replicates: int = 1,
    workers: int | None = None,
    seed: int = 1,
    node_factor: float | None = None,
    time_factor: float | None = None,
    **resilience: Any,
) -> FigureData:
    """A fig8/fig9 sweep with the mean-field prediction overlaid.

    Runs the usual simulated (policy × x) grid, then evaluates the *same*
    grid points through ``engine_backend="analytic"`` and attaches the
    result as one extra series keyed :data:`ANALYTIC_SERIES`.  The analytic
    model has no buffer-policy axis — its curve is the mean-field
    prediction the simulated policies should bracket, which is exactly the
    cross-check the preset exists to draw (docs/analytic.md).
    """
    if axis not in VALIDATE_AXES:
        raise ValueError(
            f"fig-validate supports axes {VALIDATE_AXES}, not {axis!r}"
        )
    base = random_waypoint_scenario() if scenario == "rwp" else epfl_scenario()
    figure = f"fig-validate({scenario}/{axis})"
    data = _metric_sweep(figure, base, axis, full, policies, replicates,
                         workers, seed, node_factor, time_factor, **resilience)

    overlay = base.replace(seed=seed)
    if not full:
        overlay = reduced(overlay, node_factor, time_factor)
    _, values, apply_x = _axis_plan(
        overlay, axis, full, overlay.n_nodes / base.n_nodes
    )
    overlay = overlay.replace(policy="fifo", engine_backend="analytic")
    series: dict[str, list[float]] = {m: [] for m in PAPER_METRICS}
    raw: list[list[RunSummary]] = []
    for x in values:
        summary = run_scenario(apply_x(overlay, x))
        for metric in PAPER_METRICS:
            series[metric].append(float(getattr(summary, metric)))
        raw.append([summary])
    data.series[ANALYTIC_SERIES] = series
    data.raw[ANALYTIC_SERIES] = raw
    return data


# -- Fig. 3: intermeeting distributions ---------------------------------------


def fig3_intermeeting(
    scenario: str = "rwp", full: bool = False, seed: int = 1
) -> tuple[ExponentialFit, Any]:
    """Fig. 3: intermeeting-time distribution and its exponential fit.

    Returns ``(fit, samples)`` for the requested scenario ("rwp" or "epfl").
    Traffic is disabled (generation pushed past the horizon) — contacts are
    a pure mobility property.
    """
    base = random_waypoint_scenario() if scenario == "rwp" else epfl_scenario()
    if not full:
        base = reduced(base)
    horizon = base.sim_time
    config = base.replace(
        seed=seed,
        interval_range=(horizon * 10, horizon * 10 + 1),
        policy="fifo",
    )
    from repro.experiments.runner import build_scenario

    built = build_scenario(config)
    built.sim.run()
    samples = built.contacts.intermeeting_samples()
    return fit_exponential(samples), samples


# -- Fig. 4: priority curves ----------------------------------------------------


def fig4_priority_curve(**kwargs: Any) -> dict[str, Any]:
    """Fig. 4: U_i vs P(R_i) — idealization and Taylor truncations."""
    return priority_curve(**kwargs)


__all__ = [
    "ANALYTIC_SERIES",
    "FULL_BUFFERS_MB",
    "FULL_CHURN",
    "FULL_COPIES",
    "FULL_RATES",
    "PAPER_METRICS",
    "PAPER_POLICIES",
    "REDUCED_BUFFERS_MB",
    "REDUCED_CHURN",
    "REDUCED_COPIES",
    "REDUCED_RATES",
    "VALIDATE_AXES",
    "FigureData",
    "fig3_intermeeting",
    "fig_validate",
    "fig4_priority_curve",
    "fig8_buffer",
    "fig8_churn",
    "fig8_copies",
    "fig8_rate",
    "fig9_buffer",
    "fig9_churn",
    "fig9_copies",
    "fig9_rate",
    "reduced",
    "run_scenario",
]
