"""Experiment harness: scenario presets, runner, sweeps, figure generators.

Quick use::

    from repro.experiments import random_waypoint_scenario, run_scenario

    summary = run_scenario(random_waypoint_scenario(policy="sdsrp"))
    print(summary.table_row())

Figure reproduction lives in :mod:`repro.experiments.figures`, with paper-
scale parameter grids behind ``full=True`` and reduced-scale defaults that
preserve the orderings (see DESIGN.md §4).
"""

from repro.experiments.figures import (
    PAPER_POLICIES,
    FigureData,
    fig3_intermeeting,
    fig4_priority_curve,
    fig8_buffer,
    fig8_copies,
    fig8_rate,
    fig9_buffer,
    fig9_copies,
    fig9_rate,
)
from repro.experiments.runner import build_scenario, run_scenario
from repro.experiments.scenario import (
    ScenarioConfig,
    epfl_scenario,
    random_waypoint_scenario,
    scale_scenario,
)
from repro.experiments.sweep import replicate, run_many, summarize_replicates

__all__ = [
    "PAPER_POLICIES",
    "FigureData",
    "ScenarioConfig",
    "build_scenario",
    "epfl_scenario",
    "fig3_intermeeting",
    "fig4_priority_curve",
    "fig8_buffer",
    "fig8_copies",
    "fig8_rate",
    "fig9_buffer",
    "fig9_copies",
    "fig9_rate",
    "random_waypoint_scenario",
    "replicate",
    "run_many",
    "run_scenario",
    "scale_scenario",
    "summarize_replicates",
]
