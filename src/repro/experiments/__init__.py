"""Experiment harness: scenario presets, runner, sweeps, figure generators.

Quick use::

    from repro.experiments import random_waypoint_scenario, run_scenario

    summary = run_scenario(random_waypoint_scenario(policy="sdsrp"))
    print(summary.table_row())

Figure reproduction lives in :mod:`repro.experiments.figures`, with paper-
scale parameter grids behind ``full=True`` and reduced-scale defaults that
preserve the orderings (see DESIGN.md §4).
"""

from repro.experiments.checkpoint import SweepCheckpoint, config_fingerprint
from repro.experiments.figures import (
    PAPER_POLICIES,
    FigureData,
    fig3_intermeeting,
    fig4_priority_curve,
    fig8_buffer,
    fig8_churn,
    fig8_copies,
    fig8_rate,
    fig9_buffer,
    fig9_churn,
    fig9_copies,
    fig9_rate,
    reduced,
)
from repro.experiments.runner import (
    build_scenario,
    run_scenario,
    run_scenario_safe,
)
from repro.experiments.scenario import (
    ScenarioConfig,
    epfl_scenario,
    random_waypoint_scenario,
    scale_scenario,
)
from repro.experiments.sweep import replicate, run_many, summarize_replicates

__all__ = [
    "PAPER_POLICIES",
    "FigureData",
    "ScenarioConfig",
    "SweepCheckpoint",
    "build_scenario",
    "config_fingerprint",
    "epfl_scenario",
    "fig3_intermeeting",
    "fig4_priority_curve",
    "fig8_buffer",
    "fig8_churn",
    "fig8_copies",
    "fig8_rate",
    "fig9_buffer",
    "fig9_churn",
    "fig9_copies",
    "fig9_rate",
    "random_waypoint_scenario",
    "reduced",
    "replicate",
    "run_many",
    "run_scenario",
    "run_scenario_safe",
    "scale_scenario",
    "summarize_replicates",
]
