"""Scenario configurations (paper Tables II and III).

A :class:`ScenarioConfig` is a plain, picklable record — the sweep engine
ships them to worker processes.  The two presets encode the paper's tables;
:func:`scale_scenario` produces cheaper variants (for CI benchmarks) that
keep node density and congestion level, hence the metric *orderings*.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.units import kbps, megabytes, minutes

#: Mobility kinds understood by the runner.
MOBILITY_KINDS = (
    "rwp", "taxi", "random-walk", "random-direction", "stationary", "trace",
)
#: Engine backends (see docs/vectorization.md and docs/analytic.md):
#: "scalar" is the per-node reference implementation, "vector" the
#: struct-of-arrays fast path proven byte-identical by
#: tests/vector/test_equivalence.py, "analytic" the mean-field surrogate
#: (repro.analytic; no simulation at all), and "hybrid" the analytic field
#: plus sampled discrete per-message outcomes.
ENGINE_BACKENDS = ("scalar", "vector", "analytic", "hybrid")
#: The two backends served by the mean-field models.
ANALYTIC_BACKENDS = ("analytic", "hybrid")
#: Routers with an analytic model (repro.analytic.runner dispatches on
#: these; utility-routed protocols have no closed form).
ANALYTIC_ROUTERS = ("snw", "snw-source", "epidemic", "direct")
#: Mobilities the analytic backend can parameterize: a derived meeting
#: rate (waypoint family) or an empirically calibrated one (taxi).
#: Stationary fleets never meet and traces are arbitrary, so neither fits
#: a homogeneous-rate mean field.
ANALYTIC_MOBILITIES = ("rwp", "random-walk", "random-direction", "taxi")
#: Contact kernels the vector backend may use; None picks by fleet size.
CONTACT_BACKENDS = ("matrix", "grid")
#: Router kinds understood by the runner.
ROUTER_KINDS = (
    "snw", "snw-source", "epidemic", "direct", "first-contact", "snf",
    "prophet",
)


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything needed to build and run one simulation."""

    name: str
    n_nodes: int
    sim_time: float
    # -- mobility --
    mobility: str = "rwp"
    area: tuple[float, float] = (4500.0, 3400.0)
    speed_range: tuple[float, float] = (2.0, 2.0)
    pause_range: tuple[float, float] = (0.0, 0.0)
    mobility_kwargs: dict[str, Any] = field(default_factory=dict)
    trace_path: str | None = None
    # -- radio --
    radio_range: float = 100.0
    bandwidth: float = kbps(250)
    # -- storage / traffic (Table II defaults) --
    buffer_bytes: int = megabytes(2.5)
    message_size: int = megabytes(0.5)
    #: Optional uniform size draw (extension; the paper uses a fixed size).
    message_size_range: tuple[int, int] | None = None
    interval_range: tuple[float, float] = (25.0, 35.0)
    ttl: float = minutes(300)
    initial_copies: int = 32
    # -- protocol --
    router: str = "snw"
    policy: str = "sdsrp"
    policy_kwargs: dict[str, Any] = field(default_factory=dict)
    #: Deliverable messages jump the send queue (ONE behaviour) vs strict
    #: Algorithm-1 priority order (the paper's literal scheduling).
    deliverable_first: bool = False
    # -- engine --
    tick: float = 1.0
    detector: str | None = None
    #: "scalar" (reference) or "vector" (struct-of-arrays fast path; same
    #: events, byte-identical traces — see docs/vectorization.md).
    engine_backend: str = "scalar"
    #: Contact kernel for the vector backend: "matrix" (upper-triangle
    #: broadcast), "grid" (uniform cell binning for large sparse fleets),
    #: or None to pick by fleet size.  Ignored by the scalar backend.
    contact_backend: str | None = None
    #: Spatial shard workers for the contact plane (docs/sharding.md).
    #: 1 runs in-process; N > 1 stripes the map across N supervised
    #: spawn-context workers with byte-identical results for any count.
    shard_count: int = 1
    #: Chaos fault: ``(shard_id, barrier_seq)`` makes that shard's worker
    #: SIGKILL itself when it receives barrier *barrier_seq* — on its first
    #: incarnation only, so supervised recovery completes the run.  None
    #: (the default) injects nothing.
    shard_kill: tuple[int, int] | None = None
    seed: int = 1
    #: Optional fault model (node churn, link flaps, transfer truncation);
    #: None or a disabled plan runs the paper's ideal conditions.
    faults: FaultPlan | None = None
    #: Install the runtime invariant sanitizer
    #: (:mod:`repro.analysis.sanitizer`) for this run.  Also enabled
    #: globally by ``REPRO_SANITIZE=1``.
    sanitize: bool = False
    # -- extra reports --
    with_buffer_report: bool = False
    #: Exclude messages created before this time from all metrics (ONE's
    #: report warm-up; the paper reports without one).
    metrics_warmup: float = 0.0
    # -- observability (all observation-only; see docs/observability.md) --
    #: Sample interval (sim seconds) for the time-series collector
    #: (:class:`repro.obs.timeseries.TimeSeriesCollector`); 0 disables it.
    obs_interval: float = 0.0
    #: Ring-buffer size for structured event tracing
    #: (:class:`repro.obs.trace.EventTrace`); 0 disables tracing.
    trace_capacity: int = 0
    #: Per-subsystem wall-time profiling; fills ``RunSummary.profile``.
    profile: bool = False
    # -- checkpointing (see docs/checkpointing.md) --
    #: Simulated seconds between periodic state snapshots
    #: (:class:`repro.snapshot.snapshotter.PeriodicSnapshotter`); 0 disables.
    snapshot_every: float = 0.0
    #: Where to write the rolling snapshot file (gzip JSON, atomically
    #: replaced on each snapshot).  ``None`` keeps snapshots in memory only.
    snapshot_to: str | None = None

    def __post_init__(self) -> None:
        if self.mobility not in MOBILITY_KINDS:
            raise ConfigurationError(
                f"unknown mobility {self.mobility!r}; expected {MOBILITY_KINDS}"
            )
        if self.router not in ROUTER_KINDS:
            raise ConfigurationError(
                f"unknown router {self.router!r}; expected {ROUTER_KINDS}"
            )
        if self.mobility == "trace" and not self.trace_path:
            raise ConfigurationError("trace mobility requires trace_path")
        if self.n_nodes < 2:
            raise ConfigurationError(f"n_nodes must be >= 2: {self.n_nodes}")
        if self.sim_time <= 0:
            raise ConfigurationError(f"sim_time must be positive: {self.sim_time}")
        if self.obs_interval < 0:
            raise ConfigurationError(
                f"obs_interval must be >= 0: {self.obs_interval}"
            )
        if self.trace_capacity < 0:
            raise ConfigurationError(
                f"trace_capacity must be >= 0: {self.trace_capacity}"
            )
        if self.snapshot_every < 0:
            raise ConfigurationError(
                f"snapshot_every must be >= 0: {self.snapshot_every}"
            )
        if self.engine_backend not in ENGINE_BACKENDS:
            raise ConfigurationError(
                f"unknown engine_backend {self.engine_backend!r}; "
                f"expected {ENGINE_BACKENDS}"
            )
        if (
            self.contact_backend is not None
            and self.contact_backend not in CONTACT_BACKENDS
        ):
            raise ConfigurationError(
                f"unknown contact_backend {self.contact_backend!r}; "
                f"expected one of {CONTACT_BACKENDS} or None"
            )
        if self.shard_count < 1:
            raise ConfigurationError(
                f"shard_count must be >= 1: {self.shard_count}"
            )
        if self.shard_count > 1 and self.engine_backend != "scalar":
            raise ConfigurationError(
                f"sharding drives the scalar engine only; engine_backend "
                f"{self.engine_backend!r} cannot use shard_count="
                f"{self.shard_count}"
            )
        if self.shard_kill is not None:
            if self.shard_count < 2:
                raise ConfigurationError(
                    "shard_kill requires shard_count >= 2 (no workers to "
                    "kill in-process)"
                )
            shard_id, barrier_seq = self.shard_kill
            if not 0 <= shard_id < self.shard_count:
                raise ConfigurationError(
                    f"shard_kill shard id {shard_id} out of range for "
                    f"shard_count={self.shard_count}"
                )
            if barrier_seq < 1:
                raise ConfigurationError(
                    f"shard_kill barrier_seq must be >= 1: {barrier_seq}"
                )
        if self.engine_backend in ANALYTIC_BACKENDS:
            self._validate_analytic()

    def _validate_analytic(self) -> None:
        """Reject features the mean-field surrogate cannot honor.

        Anything a user could reasonably expect to *change the numbers* —
        fault injection, event tracing, snapshotting, the runtime sanitizer
        — must fail loudly here rather than be silently ignored by a
        backend that never builds a simulator (docs/analytic.md lists the
        validity envelope).
        """
        backend = self.engine_backend
        if self.router not in ANALYTIC_ROUTERS:
            raise ConfigurationError(
                f"router {self.router!r} has no analytic model; the "
                f"{backend!r} backend supports {ANALYTIC_ROUTERS}"
            )
        if self.mobility not in ANALYTIC_MOBILITIES:
            raise ConfigurationError(
                f"mobility {self.mobility!r} has no meeting-rate estimator; "
                f"the {backend!r} backend supports {ANALYTIC_MOBILITIES}"
            )
        if self.faults is not None and self.faults.enabled:
            raise ConfigurationError(
                f"the {backend!r} backend cannot inject faults; "
                "use the scalar/vector simulator for fault studies"
            )
        if self.sanitize:
            raise ConfigurationError(
                f"the {backend!r} backend runs no simulation to sanitize"
            )
        if self.trace_capacity > 0:
            raise ConfigurationError(
                f"the {backend!r} backend emits no event trace; "
                "set trace_capacity=0"
            )
        if self.snapshot_every > 0:
            raise ConfigurationError(
                f"the {backend!r} backend has no simulator state to "
                "snapshot; set snapshot_every=0"
            )
        if self.with_buffer_report:
            raise ConfigurationError(
                f"the {backend!r} backend has no per-node buffers to report"
            )
        if self.metrics_warmup > 0:
            raise ConfigurationError(
                f"the {backend!r} backend models the whole horizon; "
                "metrics_warmup is not supported"
            )
        if self.profile:
            raise ConfigurationError(
                f"the {backend!r} backend has no per-phase profiler; "
                "set profile=False"
            )

    def replace(self, **changes: Any) -> "ScenarioConfig":
        """A copy with *changes* applied (dataclasses.replace wrapper)."""
        return dataclasses.replace(self, **changes)


def random_waypoint_scenario(**overrides: Any) -> ScenarioConfig:
    """Table II: the synthetic random-waypoint scenario.

    18000 s, 4500 m x 3400 m, 100 nodes at 2 m/s, 250 kbit/s radio with
    100 m range, 2.5 MB buffers, 0.5 MB messages every 25-35 s, TTL 300 min,
    L = 32 copies.  Override any field via keyword arguments.
    """
    base = ScenarioConfig(
        name="random-waypoint",
        n_nodes=100,
        sim_time=18000.0,
        mobility="rwp",
    )
    return base.replace(**overrides) if overrides else base


def epfl_scenario(**overrides: Any) -> ScenarioConfig:
    """Table III: the taxi-trace scenario (synthetic EPFL substitute).

    200 taxis over 18000 s with the same radio/buffer/traffic parameters as
    Table II.  Uses :class:`repro.mobility.taxi.TaxiFleet` by default; pass
    ``mobility="trace", trace_path=...`` to replay real data instead.
    """
    base = ScenarioConfig(
        name="epfl",
        n_nodes=200,
        sim_time=18000.0,
        mobility="taxi",
        area=(8000.0, 8000.0),
    )
    return base.replace(**overrides) if overrides else base


def scale_scenario(
    config: ScenarioConfig,
    node_factor: float = 1.0,
    time_factor: float = 1.0,
    interval_factor: float = 1.0,
) -> ScenarioConfig:
    """Shrink a scenario while preserving node density and congestion.

    Four invariants keep the policy *orderings* intact at reduced cost:

    * **node density** — the area scales with the node count, so per-node
      contact rates stay similar;
    * **spray saturation** — L/N governs how much of the fleet a spray can
      reach (L=32 must stay "a third of the fleet", not "most of it"), so
      initial copies scale with the node count;
    * **buffer pressure** — total generated copy-bytes stay proportional to
      total buffer bytes.  Copy-bytes ∝ (sim_time/interval)·L, and with L
      already scaled by the node factor, the interval scales by
      ``time_factor`` alone;
    * **message aging** — TTL scales with the simulation time (the paper
      sets TTL = 300 min = the 18000 s horizon).

    ``interval_factor`` additionally multiplies the generation interval to
    *calibrate the congestion operating point*: a simulator substrate that
    is more or less efficient than the paper's (ONE) at equal byte pressure
    can be brought into the paper's observed delivery-ratio band (where the
    reported orderings live) by generating proportionally less or more
    traffic.  The benchmark harness uses
    :data:`repro.experiments.figures.REDUCED_INTERVAL_FACTOR`, calibrated so
    the plain Spray-and-Wait baseline lands near the paper's ~0.3 delivery
    ratio (see EXPERIMENTS.md).
    """
    if node_factor <= 0 or time_factor <= 0 or interval_factor <= 0:
        raise ConfigurationError("scale factors must be positive")
    n_nodes = max(2, round(config.n_nodes * node_factor))
    actual_factor = n_nodes / config.n_nodes
    w, h = config.area
    area_scale = actual_factor**0.5
    lo, hi = config.interval_range
    return config.replace(
        name=f"{config.name}-x{actual_factor:.2f}",
        n_nodes=n_nodes,
        sim_time=config.sim_time * time_factor,
        ttl=config.ttl * time_factor,
        area=(w * area_scale, h * area_scale),
        interval_range=(
            lo * time_factor * interval_factor,
            hi * time_factor * interval_factor,
        ),
        initial_copies=max(2, round(config.initial_copies * actual_factor)),
    )
