"""Command-line interface: ``python -m repro.experiments`` / ``repro-experiments``.

Subcommands regenerate the paper's artifacts::

    repro-experiments run  --scenario rwp --policy sdsrp          # one run
    repro-experiments fig3 --scenario epfl                        # distribution fit
    repro-experiments fig4                                        # priority curves
    repro-experiments fig8 --axis copies --workers 8              # reduced scale
    repro-experiments fig8 --axis copies --full --workers 16      # paper scale
    repro-experiments fig9 --axis buffer --replicates 3

``--json FILE`` additionally dumps the raw series for plotting.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from repro.errors import ConfigurationError, InvariantViolation
from repro.experiments import figures as F
from repro.experiments.runner import build_scenario, run_built
from repro.experiments.scenario import epfl_scenario, random_waypoint_scenario
from repro.faults.plan import FaultPlan
from repro.obs.trace import DEFAULT_TRACE_CAPACITY, format_record
from repro.reports.summary import RunSummary


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--json", type=str, default=None, metavar="FILE",
                        help="also dump results as JSON")


def _add_sweep_args(parser: argparse.ArgumentParser) -> None:
    _add_common(parser)
    parser.add_argument("--axis", choices=("copies", "buffer", "rate", "churn"),
                        default="copies")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale grids (slow)")
    parser.add_argument("--replicates", type=int, default=1)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--policies", nargs="+", default=list(F.PAPER_POLICIES))
    parser.add_argument("--resume", type=str, default=None, metavar="PATH",
                        help="JSONL checkpoint file; completed runs are "
                             "reused when re-running after an interruption")
    parser.add_argument("--retries", type=int, default=0,
                        help="re-run failed grid points up to N extra times "
                             "(fresh derived seed per attempt)")
    parser.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                        help="per-run wall-clock limit; a hung run becomes a "
                             "recorded failure instead of stalling the sweep")


def _dump_json(path: str, payload: Any) -> None:
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, default=str)
    print(f"wrote {path}")


def _cmd_run_analytic(args: argparse.Namespace) -> int:
    """The ``run --engine analytic|hybrid`` path: no simulator is built."""
    from repro.analytic.runner import run_analytic
    from repro.analytic.hybrid import hybrid_summary

    base = random_waypoint_scenario() if args.scenario == "rwp" else epfl_scenario()
    config = base.replace(
        policy=args.policy, seed=args.seed, initial_copies=args.copies,
        engine_backend=args.engine,
    )
    if args.reduced:
        config = F.reduced(config)
    # Plumb every simulator-path flag into the config so out-of-envelope
    # requests (--churn, --trace, --sanitize, --profile, --snapshot-every)
    # fail loudly in _validate_analytic instead of being silently ignored.
    if args.churn:
        duty = config.sim_time / 5.0
        config = config.replace(faults=FaultPlan(
            churn_fraction=args.churn, churn_off_time=duty, churn_on_time=duty
        ))
    config = config.replace(
        sanitize=args.sanitize,
        obs_interval=args.obs_interval if args.obs_out else 0.0,
        trace_capacity=args.trace_capacity if args.trace else 0,
        profile=args.profile,
        snapshot_every=args.snapshot_every,
        snapshot_to=args.snapshot_to,
    )
    if args.from_snapshot:
        raise ConfigurationError(
            f"the {args.engine!r} backend has no simulator state; "
            "--from-snapshot needs the scalar/vector engine"
        )
    result = run_analytic(config)
    summary = (
        hybrid_summary(result) if args.engine == "hybrid" else result.summary()
    )
    print(f"meeting rate: λ = {result.meeting.rate:.3e} /s "
          f"({result.meeting.method}: {result.meeting.detail})")
    if result.blocking > 0:
        print(f"buffer blocking: ρ = {result.blocking:.3f}")
    print(RunSummary.table_header())
    print(summary.table_row())
    if args.obs_out:
        result.write_timeseries(args.obs_out)
        print(f"wrote {args.obs_out}")
    if args.json:
        _dump_json(args.json, summary.as_dict())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.engine in ("analytic", "hybrid"):
        return _cmd_run_analytic(args)
    base = random_waypoint_scenario() if args.scenario == "rwp" else epfl_scenario()
    config = base.replace(
        policy=args.policy, seed=args.seed, initial_copies=args.copies,
        sanitize=args.sanitize, engine_backend=args.engine,
        shard_count=args.shards,
    )
    if args.reduced:
        config = F.reduced(config)
    if args.churn:
        duty = config.sim_time / 5.0
        config = config.replace(faults=FaultPlan(
            churn_fraction=args.churn, churn_off_time=duty, churn_on_time=duty
        ))
    config = config.replace(
        obs_interval=args.obs_interval if args.obs_out else 0.0,
        trace_capacity=args.trace_capacity if args.trace else 0,
        profile=args.profile,
        snapshot_every=args.snapshot_every,
        snapshot_to=args.snapshot_to,
    )
    if args.from_snapshot:
        from repro.snapshot import read_snapshot, restore

        built = restore(read_snapshot(args.from_snapshot))
        print(f"resumed {built.config.name!r} from {args.from_snapshot} "
              f"at t={built.sim.now:.0f}")
    else:
        built = build_scenario(config)
    try:
        summary = run_built(built)
    except InvariantViolation as exc:
        if exc.trace_tail:
            print(f"invariant violation; last {len(exc.trace_tail)} events:",
                  file=sys.stderr)
            for record in exc.trace_tail:
                sys.stderr.write(format_record(record))
        if args.trace and built.trace is not None:
            built.trace.dump_jsonl(args.trace)
            print(f"wrote {args.trace}", file=sys.stderr)
        raise
    print(RunSummary.table_header())
    print(summary.table_row())
    if args.obs_out and built.timeseries is not None:
        built.timeseries.write(args.obs_out)
        print(f"wrote {args.obs_out}")
    if args.trace and built.trace is not None:
        built.trace.dump_jsonl(args.trace)
        print(f"wrote {args.trace}")
    if args.profile and built.profiler is not None:
        print()
        print(built.profiler.table())
    if args.json:
        _dump_json(args.json, summary.as_dict())
    return 0


def _cmd_figsweep(args: argparse.Namespace, scenario: str) -> int:
    fn = {
        ("fig8", "copies"): F.fig8_copies,
        ("fig8", "buffer"): F.fig8_buffer,
        ("fig8", "rate"): F.fig8_rate,
        ("fig8", "churn"): F.fig8_churn,
        ("fig9", "copies"): F.fig9_copies,
        ("fig9", "buffer"): F.fig9_buffer,
        ("fig9", "rate"): F.fig9_rate,
        ("fig9", "churn"): F.fig9_churn,
    }[(scenario, args.axis)]
    data = fn(
        full=args.full,
        policies=tuple(args.policies),
        replicates=args.replicates,
        workers=args.workers,
        seed=args.seed,
        retries=args.retries,
        timeout=args.timeout,
        resume=args.resume,
    )
    for metric in F.PAPER_METRICS:
        print(data.metric_table(metric))
        print()
    if data.failures:
        print(f"{len(data.failures)} run(s) failed:")
        for failure in data.failures:
            print(f"  {failure.table_row()}")
    if args.json:
        _dump_json(args.json, {
            "figure": data.figure,
            "x_label": data.x_label,
            "x_values": data.x_values,
            "series": data.series,
            "failures": [f.as_dict() for f in data.failures],
        })
    return 1 if data.failures else 0


def _cmd_figvalidate(args: argparse.Namespace) -> int:
    data = F.fig_validate(
        scenario=args.scenario,
        axis=args.axis,
        full=args.full,
        policies=tuple(args.policies),
        replicates=args.replicates,
        workers=args.workers,
        seed=args.seed,
        retries=args.retries,
        timeout=args.timeout,
        resume=args.resume,
    )
    for metric in F.PAPER_METRICS:
        print(data.metric_table(metric))
        print()
    if data.failures:
        print(f"{len(data.failures)} run(s) failed:")
        for failure in data.failures:
            print(f"  {failure.table_row()}")
    if args.json:
        _dump_json(args.json, {
            "figure": data.figure,
            "x_label": data.x_label,
            "x_values": data.x_values,
            "series": data.series,
            "failures": [f.as_dict() for f in data.failures],
        })
    return 1 if data.failures else 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    fit, samples = F.fig3_intermeeting(
        scenario=args.scenario, full=args.full, seed=args.seed
    )
    print(f"fig3 ({args.scenario}): {fit.n_samples} intermeeting samples")
    print(f"  E(I) = {fit.mean:.1f} s   λ = {fit.rate:.3e} /s")
    print(f"  KS statistic = {fit.ks_statistic:.4f} (p = {fit.ks_pvalue:.3f})")
    if args.json:
        _dump_json(args.json, {
            "scenario": args.scenario,
            "mean": fit.mean,
            "rate": fit.rate,
            "n_samples": fit.n_samples,
            "ks_statistic": fit.ks_statistic,
            "ks_pvalue": fit.ks_pvalue,
            "samples": samples.tolist(),
        })
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    curves = F.fig4_priority_curve()
    p_r = curves["p_r"]
    ideal = curves["ideal"]
    peak = float(p_r[int(ideal.argmax())])
    print(f"fig4: idealized priority peaks at P(R) = {peak:.4f} "
          f"(theory: 1 - 1/e = {1 - 1 / 2.718281828:.4f})")
    for key in sorted(k for k in curves if k.startswith("taylor")):
        err = float(abs(curves[key] - ideal).max())
        print(f"  {key:<12} max |error| vs idealization = {err:.4f}")
    if args.json:
        _dump_json(args.json, {k: v.tolist() for k, v in curves.items()})
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the SDSRP paper's figures and tables.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one scenario")
    _add_common(p_run)
    p_run.add_argument("--scenario", choices=("rwp", "epfl"), default="rwp")
    p_run.add_argument("--policy", default="sdsrp")
    p_run.add_argument("--copies", type=int, default=32)
    p_run.add_argument("--engine",
                       choices=("scalar", "vector", "analytic", "hybrid"),
                       default="scalar",
                       help="engine backend: per-node scalar loop, the "
                            "struct-of-arrays vector core (byte-identical "
                            "output; see docs/vectorization.md), the "
                            "mean-field analytic surrogate, or the hybrid "
                            "analytic+sampled mode (docs/analytic.md)")
    p_run.add_argument("--shards", type=int, default=1, metavar="N",
                       help="shard the contact plane across N supervised "
                            "worker processes (scalar engine only; "
                            "byte-identical output for any N; see "
                            "docs/sharding.md)")
    p_run.add_argument("--reduced", action="store_true",
                       help="run the reduced-scale variant")
    p_run.add_argument("--churn", type=float, default=0.0, metavar="FRACTION",
                       help="cycle this fraction of nodes off/on "
                            "(1/5-horizon duty cycle)")
    p_run.add_argument("--sanitize", action="store_true",
                       help="validate runtime invariants every tick "
                            "(see docs/static_analysis.md)")
    p_run.add_argument("--obs-out", type=str, default=None, metavar="FILE",
                       help="write the metrics time series (.json or .csv; "
                            "see docs/observability.md)")
    p_run.add_argument("--obs-interval", type=float, default=60.0,
                       metavar="SECONDS",
                       help="time-series sample interval (default 60)")
    p_run.add_argument("--trace", type=str, default=None, metavar="FILE",
                       help="write the structured event trace as JSONL "
                            "(also dumped on an invariant violation)")
    p_run.add_argument("--trace-capacity", type=int,
                       default=DEFAULT_TRACE_CAPACITY, metavar="N",
                       help="event-trace ring-buffer size "
                            f"(default {DEFAULT_TRACE_CAPACITY})")
    p_run.add_argument("--profile", action="store_true",
                       help="per-subsystem wall-time breakdown")
    p_run.add_argument("--snapshot-every", type=float, default=0.0,
                       metavar="SECONDS",
                       help="capture a full simulator snapshot every N sim "
                            "seconds (see docs/checkpointing.md)")
    p_run.add_argument("--snapshot-to", type=str, default=None, metavar="FILE",
                       help="rolling snapshot file (gzip JSON, written "
                            "atomically; requires --snapshot-every)")
    p_run.add_argument("--from-snapshot", type=str, default=None,
                       metavar="FILE",
                       help="resume from a snapshot file instead of building "
                            "the scenario from scratch (scenario flags are "
                            "taken from the snapshot)")

    p_fig3 = sub.add_parser("fig3", help="intermeeting distribution fit")
    _add_common(p_fig3)
    p_fig3.add_argument("--scenario", choices=("rwp", "epfl"), default="rwp")
    p_fig3.add_argument("--full", action="store_true")

    p_fig4 = sub.add_parser("fig4", help="priority curves")
    _add_common(p_fig4)

    for fig in ("fig8", "fig9"):
        p = sub.add_parser(fig, help=f"{fig} metric sweeps")
        _add_sweep_args(p)

    p_val = sub.add_parser(
        "fig-validate",
        help="fig8/fig9 sweep with the analytic mean-field overlay "
             "(see docs/analytic.md)",
    )
    _add_common(p_val)
    p_val.add_argument("--scenario", choices=("rwp", "epfl"), default="rwp")
    p_val.add_argument("--axis", choices=F.VALIDATE_AXES, default="copies")
    p_val.add_argument("--full", action="store_true",
                       help="paper-scale grids (slow)")
    p_val.add_argument("--replicates", type=int, default=1)
    p_val.add_argument("--workers", type=int, default=None)
    p_val.add_argument("--policies", nargs="+", default=list(F.PAPER_POLICIES))
    p_val.add_argument("--resume", type=str, default=None, metavar="PATH")
    p_val.add_argument("--retries", type=int, default=0)
    p_val.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS")

    sub.add_parser(
        "chaos",
        help="fuzz fault schedules against the correctness oracles "
             "(see docs/chaos.md; flags are repro-chaos's own)",
        add_help=False,
    )

    return parser


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "chaos":
        # The chaos harness owns its flag set; delegate wholesale so
        # `repro-experiments chaos --iterations 200` and `repro-chaos
        # --iterations 200` are the same command.
        from repro.chaos.cli import main as chaos_main

        return chaos_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "fig3":
        return _cmd_fig3(args)
    if args.command == "fig4":
        return _cmd_fig4(args)
    if args.command in ("fig8", "fig9"):
        return _cmd_figsweep(args, args.command)
    if args.command == "fig-validate":
        return _cmd_figvalidate(args)
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
