"""Build and run one scenario.

:func:`build_scenario` assembles the full simulator stack from a
:class:`~repro.experiments.scenario.ScenarioConfig`; :func:`run_scenario`
runs it to the horizon and returns a
:class:`~repro.reports.summary.RunSummary`.  Both are importable by worker
processes (no closures), so sweeps parallelize cleanly.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.analysis.sanitizer import Sanitizer
from repro.core.oracle import GlobalInfectionOracle
from repro.core.params import ESTIMATOR_ORACLE, SdsrpParams
from repro.core.sdsrp import SdsrpPolicy, SdsrpShared
from repro.engine.simulator import Simulator
from repro.errors import ConfigurationError, InvariantViolation, SnapshotError
from repro.faults.injector import FaultInjector
from repro.mobility.base import MobilityModel
from repro.mobility.random_direction import RandomDirection
from repro.mobility.random_walk import RandomWalk
from repro.mobility.random_waypoint import RandomWaypoint
from repro.mobility.stationary import Stationary
from repro.mobility.taxi import TaxiFleet
from repro.net.generator import MessageGenerator, TrafficSpec
from repro.net.transfer import TransferManager
from repro.obs.profiler import PhaseProfiler
from repro.obs.timeseries import TimeSeriesCollector
from repro.obs.trace import DEFAULT_CONTEXT_EVENTS, EventTrace
from repro.policies.base import BufferPolicy
from repro.policies.registry import make_policy
from repro.reports.buffer_report import BufferReport
from repro.reports.contact_report import ContactReport
from repro.reports.metrics import MetricsCollector
from repro.reports.summary import FailedRun, RunSummary
from repro.rng import RngFactory
from repro.routing.base import Router
from repro.routing.direct import DirectDeliveryRouter
from repro.routing.epidemic import EpidemicRouter
from repro.routing.first_contact import FirstContactRouter
from repro.routing.prophet import ProphetRouter
from repro.routing.spray_and_focus import SprayAndFocusRouter
from repro.routing.spray_and_wait import SprayAndWaitRouter
from repro.traces.format import read_movement_trace
from repro.vector.world import VectorWorld
from repro.world.contacts import make_detector
from repro.world.node import Node
from repro.world.radio import Radio
from repro.world.world import World
from repro.experiments.scenario import ANALYTIC_BACKENDS, ScenarioConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.snapshot.snapshotter import PeriodicSnapshotter


@dataclass
class BuiltSimulation:
    """The assembled stack for one run (exposed for tests and examples)."""

    config: ScenarioConfig
    sim: Simulator
    world: World
    nodes: list[Node]
    metrics: MetricsCollector
    contacts: ContactReport
    generator: MessageGenerator
    shared: SdsrpShared | None
    buffer_report: BufferReport | None
    fault_injector: FaultInjector | None = None
    sanitizer: Sanitizer | None = None
    #: Observability collectors (None unless enabled on the config; see
    #: docs/observability.md).  All three are strictly observation-only.
    timeseries: TimeSeriesCollector | None = None
    trace: EventTrace | None = None
    profiler: PhaseProfiler | None = None
    #: The seeded stream factory the stack was built with; required by
    #: :func:`repro.snapshot.save` to capture RNG stream states.
    rng: RngFactory | None = None
    #: Periodic checkpointer (None unless ``config.snapshot_every > 0``).
    snapshotter: "PeriodicSnapshotter | None" = None


def _make_mobility(config: ScenarioConfig) -> MobilityModel:
    kw = dict(config.mobility_kwargs)
    if config.mobility == "rwp":
        return RandomWaypoint(
            config.n_nodes, config.area, config.speed_range, config.pause_range, **kw
        )
    if config.mobility == "taxi":
        return TaxiFleet(config.n_nodes, area=config.area, **kw)
    if config.mobility == "random-walk":
        return RandomWalk(config.n_nodes, config.area, config.speed_range, **kw)
    if config.mobility == "random-direction":
        return RandomDirection(
            config.n_nodes, config.area, config.speed_range, config.pause_range, **kw
        )
    if config.mobility == "stationary":
        return Stationary(config.n_nodes, config.area, **kw)
    if config.mobility == "trace":
        assert config.trace_path is not None
        mobility = read_movement_trace(config.trace_path)
        if mobility.n_nodes != config.n_nodes:
            raise ConfigurationError(
                f"trace drives {mobility.n_nodes} nodes, scenario wants "
                f"{config.n_nodes}"
            )
        return mobility
    raise ConfigurationError(f"unknown mobility {config.mobility!r}")


#: Policies of the SDSRP family share fleet state (λ estimator / oracle);
#: the suffix "-oracle" switches any of them to exact global knowledge.
_SHARED_FAMILY: dict[str, type[SdsrpPolicy]] = {}


def _shared_family() -> dict[str, type[SdsrpPolicy]]:
    if not _SHARED_FAMILY:
        from repro.core.knapsack import KnapsackSdsrpPolicy
        from repro.policies.gbsd import GbsdPolicy

        _SHARED_FAMILY.update(
            {
                "sdsrp": SdsrpPolicy,
                "sdsrp-oracle": SdsrpPolicy,
                "sdsrp-knapsack": KnapsackSdsrpPolicy,
                "gbsd": GbsdPolicy,
                "gbsd-oracle": GbsdPolicy,
            }
        )
    return _SHARED_FAMILY


def _make_policies(
    config: ScenarioConfig, sim: Simulator
) -> tuple[list[BufferPolicy], SdsrpShared | None]:
    """One policy instance per node, plus the SDSRP shared state if any."""
    family = _shared_family()
    if config.policy in family:
        cls = family[config.policy]
        kwargs = dict(config.policy_kwargs)
        if config.policy.endswith("-oracle"):
            kwargs["estimator"] = ESTIMATOR_ORACLE
        params = SdsrpParams(**kwargs)
        oracle = None
        if params.estimator == ESTIMATOR_ORACLE:
            oracle = GlobalInfectionOracle()
            oracle.subscribe(sim)
        shared = SdsrpShared.for_fleet(config.n_nodes, params=params, oracle=oracle)
        return [cls(shared=shared) for _ in range(config.n_nodes)], shared
    policies = [
        make_policy(config.policy, **config.policy_kwargs)
        for _ in range(config.n_nodes)
    ]
    return policies, None


def _make_router(config: ScenarioConfig, node: Node, policy: BufferPolicy) -> Router:
    if config.router == "snw":
        return SprayAndWaitRouter(node, policy)
    if config.router == "snw-source":
        return SprayAndWaitRouter(node, policy, source_spray=True)
    if config.router == "epidemic":
        return EpidemicRouter(node, policy)
    if config.router == "direct":
        return DirectDeliveryRouter(node, policy)
    if config.router == "first-contact":
        return FirstContactRouter(node, policy)
    if config.router == "snf":
        return SprayAndFocusRouter(node, policy)
    if config.router == "prophet":
        return ProphetRouter(node, policy)
    raise ConfigurationError(f"unknown router {config.router!r}")


#: Routers whose forwarding conserves spray tokens, enabling the sanitizer's
#: copy-conservation invariant.  Source spray ("snw-source") and
#: clone-everything routers (epidemic, prophet, …) inflate token sums by
#: design, so only the check's cheaper invariants apply to them.
_TOKEN_CONSERVING_ROUTERS = ("snw", "snf")


def build_scenario(config: ScenarioConfig) -> BuiltSimulation:
    """Assemble the simulator stack without running it."""
    if config.engine_backend in ANALYTIC_BACKENDS:
        raise ConfigurationError(
            f"engine_backend {config.engine_backend!r} runs no simulator; "
            "use run_scenario() (which dispatches to repro.analytic) "
            "instead of build_scenario()"
        )
    sim = Simulator(end_time=config.sim_time, sanitize=config.sanitize or None)
    rng = RngFactory(config.seed)

    mobility = _make_mobility(config)
    radio = Radio(range_m=config.radio_range, bandwidth_Bps=config.bandwidth)
    nodes = [
        Node(i, radio, buffer_capacity=config.buffer_bytes)
        for i in range(config.n_nodes)
    ]
    transfer_manager = TransferManager(sim)
    detector = make_detector(config.n_nodes, config.detector)
    world: World
    if config.engine_backend == "vector":
        world = VectorWorld(
            sim, mobility, nodes, transfer_manager, detector,
            tick=config.tick, contact_backend=config.contact_backend,
        )
    elif config.shard_count > 1:
        # Imported here: repro.shard's workers import this module back.
        from repro.shard.coordinator import ShardCoordinator
        from repro.shard.world import ShardedWorld

        world = ShardedWorld(
            sim, mobility, nodes, transfer_manager, detector,
            tick=config.tick, coordinator=ShardCoordinator(config),
        )
    else:
        world = World(
            sim, mobility, nodes, transfer_manager, detector, tick=config.tick
        )

    policies, shared = _make_policies(config, sim)
    batch_eval = config.engine_backend == "vector"
    for node, policy in zip(nodes, policies):
        router = _make_router(config, node, policy)
        router.deliverable_first = config.deliverable_first
        router.batch_eval = batch_eval
        router.bind(sim, transfer_manager, config.n_nodes, rng=rng)

    metrics = MetricsCollector(warmup=config.metrics_warmup)
    metrics.subscribe(sim)
    contacts = ContactReport()
    contacts.subscribe(sim)
    buffer_report = None
    if config.with_buffer_report:
        buffer_report = BufferReport(nodes)
        buffer_report.subscribe(sim)

    generator = MessageGenerator(
        sim,
        nodes,
        TrafficSpec(
            interval_range=config.interval_range,
            message_size=config.message_size,
            ttl=config.ttl,
            initial_copies=config.initial_copies,
            size_range=config.message_size_range,
        ),
        rng.stream("traffic"),
    )

    world.start(rng.stream("mobility"))
    generator.start()

    fault_injector = None
    if config.faults is not None and config.faults.enabled:
        fault_injector = FaultInjector(world, config.faults, rng.stream("faults"))
        fault_injector.start()

    sanitizer = None
    if sim.sanitize:
        sanitizer = Sanitizer(
            nodes, check_copies=config.router in _TOKEN_CONSERVING_ROUTERS
        )
        sanitizer.subscribe(sim)

    timeseries = None
    if config.obs_interval > 0:
        timeseries = TimeSeriesCollector(nodes, interval=config.obs_interval)
        timeseries.subscribe(sim)
    trace = None
    if config.trace_capacity > 0:
        trace = EventTrace(capacity=config.trace_capacity)
        trace.subscribe(sim)
    profiler = None
    if config.profile:
        profiler = PhaseProfiler()
        sim.profiler = profiler
    built = BuiltSimulation(
        config=config,
        sim=sim,
        world=world,
        nodes=nodes,
        metrics=metrics,
        contacts=contacts,
        generator=generator,
        shared=shared,
        buffer_report=buffer_report,
        fault_injector=fault_injector,
        sanitizer=sanitizer,
        timeseries=timeseries,
        trace=trace,
        profiler=profiler,
        rng=rng,
    )
    if config.snapshot_every > 0:
        # Imported here: repro.snapshot.restore imports this module back.
        from repro.snapshot.snapshotter import PeriodicSnapshotter

        built.snapshotter = PeriodicSnapshotter(
            built, every=config.snapshot_every, path=config.snapshot_to
        )
        built.snapshotter.start()
    return built


def run_built(built: BuiltSimulation, wall_start: float | None = None) -> RunSummary:
    """Run an assembled stack to the horizon and summarize it.

    When an :class:`~repro.errors.InvariantViolation` escapes the sanitizer
    and the run carried an event trace, the last
    :data:`~repro.obs.trace.DEFAULT_CONTEXT_EVENTS` trace records are
    attached to the exception as ``trace_tail`` before it propagates — the
    CLI and test harnesses dump them as debugging context.
    """
    if wall_start is None:
        wall_start = time.perf_counter()
    config = built.config
    try:
        built.sim.run()
    except InvariantViolation as exc:
        if built.trace is not None:
            exc.trace_tail = built.trace.tail(DEFAULT_CONTEXT_EVENTS)
        raise
    finally:
        # Tear down external resources (shard workers) even when the run
        # dies; the in-process worlds implement this as a no-op.
        built.world.close()
    if built.timeseries is not None:
        built.timeseries.finalize(built.sim.now)
    metrics = built.metrics
    return RunSummary(
        scenario=config.name,
        policy=config.policy,
        seed=config.seed,
        sim_time=config.sim_time,
        initial_copies=config.initial_copies,
        buffer_bytes=config.buffer_bytes,
        interval_range=config.interval_range,
        created=metrics.created,
        delivered=metrics.delivered,
        relayed=metrics.relayed,
        delivery_ratio=metrics.delivery_ratio,
        average_hopcount=metrics.average_hopcount,
        overhead_ratio=metrics.overhead_ratio,
        average_latency=metrics.average_latency,
        drops=dict(metrics.drops_by_reason),
        faults=dict(metrics.faults_by_kind),
        contacts=built.contacts.contact_count,
        mean_intermeeting=built.contacts.mean_intermeeting(),
        wall_seconds=time.perf_counter() - wall_start,
        profile=built.profiler.as_dict() if built.profiler is not None else {},
    )


def run_scenario(config: ScenarioConfig) -> RunSummary:
    """Build, run to the horizon, and summarize one scenario.

    ``engine_backend="analytic"``/``"hybrid"`` configs never build a
    simulator: they dispatch to the mean-field surrogate
    (:func:`repro.analytic.runner.run_analytic_summary`), which returns the
    same :class:`RunSummary` shape — sweeps, figures, the service cache and
    the CLI are backend-agnostic.
    """
    if config.engine_backend in ANALYTIC_BACKENDS:
        # Imported lazily: repro.analytic's calibration fallback runs short
        # simulations through build_scenario, so the import must not cycle.
        from repro.analytic.runner import run_analytic_summary

        return run_analytic_summary(config)
    wall_start = time.perf_counter()
    return run_built(build_scenario(config), wall_start=wall_start)


def _try_resume(config: ScenarioConfig) -> BuiltSimulation | None:
    """Restore from the scenario's rolling snapshot file, if one is valid.

    Returns ``None`` (caller builds from scratch) when snapshotting is off,
    no file exists, the file is unreadable/corrupt, or it was written for a
    different configuration.
    """
    if config.snapshot_every <= 0 or not config.snapshot_to:
        return None
    path = Path(config.snapshot_to)
    if not path.exists():
        return None
    from repro.snapshot import read_snapshot, restore
    from repro.snapshot.capture import encode_config
    from repro.snapshot.codec import canonical_json

    try:
        snap = read_snapshot(path)
        if canonical_json(snap.config) != canonical_json(encode_config(config)):
            return None
        return restore(snap)
    except SnapshotError:
        return None


def run_scenario_safe(config: ScenarioConfig) -> RunSummary | FailedRun:
    """:func:`run_scenario`, but failures become :class:`FailedRun` records.

    Any :class:`Exception` (including every :class:`~repro.errors.ReproError`)
    is captured with its traceback instead of propagating, so one bad
    configuration or simulator bug cannot poison a whole sweep.
    ``KeyboardInterrupt``/``SystemExit`` still propagate.

    When the config carries a snapshot file (``snapshot_every`` > 0 and
    ``snapshot_to`` set), a valid snapshot left by a previous attempt is
    resumed from instead of restarting at t=0, and the file is removed once
    the run completes.
    """
    try:
        if config.engine_backend in ANALYTIC_BACKENDS:
            return run_scenario(config)
        wall_start = time.perf_counter()
        built = _try_resume(config)
        if built is None:
            built = build_scenario(config)
        summary = run_built(built, wall_start=wall_start)
        if config.snapshot_every > 0 and config.snapshot_to:
            Path(config.snapshot_to).unlink(missing_ok=True)
        return summary
    except Exception as exc:
        return FailedRun(
            scenario=config.name,
            policy=config.policy,
            seed=config.seed,
            error_type=type(exc).__name__,
            error_message=str(exc),
            traceback=traceback.format_exc(),
        )
