"""Crash-safe sweep checkpoints (append-only JSONL).

A sweep writes one line per finished item — success or failure — keyed by a
content fingerprint of the item's :class:`ScenarioConfig`.  Resuming a
killed sweep (``--resume PATH``) replays the file and skips every config
whose summary is already recorded, so an interrupted multi-hour grid loses
at most the items that were in flight.

Design points:

* the key is a hash of the *config contents* (not its position), so a
  resume is safe under grid edits — only unchanged points are reused;
* lines are flushed + fsynced as written; a torn final line (the process
  died mid-write) is detected and ignored on load;
* failed items are recorded for reporting but never *reused*: a resume
  retries them, because the failure may have been environmental (OOM, a
  killed worker) rather than deterministic.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import warnings
from pathlib import Path
from typing import Any, Union

from repro.experiments.scenario import ScenarioConfig
from repro.reports.summary import FailedRun, RunSummary

SweepResult = Union[RunSummary, FailedRun]

_KIND_SUMMARY = "summary"
_KIND_FAILED = "failed"


def config_fingerprint(config: ScenarioConfig) -> str:
    """Stable content hash of a scenario config (sweep checkpoint key)."""
    payload = json.dumps(
        dataclasses.asdict(config), sort_keys=True, default=str
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


class SweepCheckpoint:
    """One sweep's append-only result log.

    The in-memory view keeps the *last* record per key, so a retried item
    simply overwrites its earlier failure when replayed.
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = Path(path)
        self._records: dict[str, SweepResult] = {}
        #: Replayed lines whose key was already present (retries, or a
        #: pre-harvest-fix sweep that recomputed items after a pool
        #: rebuild).  Last write wins; the count makes it visible.
        self.duplicate_keys = 0
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        duplicates: set[str] = set()
        with open(self.path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    kind = entry["kind"]
                    data = entry["data"]
                    key = entry["key"]
                    if kind == _KIND_SUMMARY:
                        record = RunSummary.from_record(data)
                    elif kind == _KIND_FAILED:
                        record = FailedRun.from_record(data)
                    else:
                        continue
                except (json.JSONDecodeError, KeyError, TypeError):
                    continue  # torn final line from a mid-write crash
                if key in self._records:
                    self.duplicate_keys += 1
                    duplicates.add(key)
                self._records[key] = record
        if duplicates:
            # One warning per load, not per line: a long retry history is
            # normal, but the operator should know the journal holds more
            # than one record for some points (the later one is used).
            warnings.warn(
                f"sweep checkpoint {self.path} replayed "
                f"{self.duplicate_keys} duplicate line(s) across "
                f"{len(duplicates)} fingerprint(s); keeping the last "
                "record for each",
                stacklevel=3,
            )

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def completed(self, key: str) -> RunSummary | None:
        """The recorded *successful* summary for *key*, if any.

        Failures are deliberately not returned: a resumed sweep retries
        them (the crash may have been environmental, not deterministic).
        """
        hit = self._records.get(key)
        return hit if isinstance(hit, RunSummary) else None

    def failed(self, key: str) -> FailedRun | None:
        """The recorded failure for *key*, if any (reporting only)."""
        hit = self._records.get(key)
        return hit if isinstance(hit, FailedRun) else None

    # -- writes --------------------------------------------------------------

    def _needs_newline(self) -> bool:
        """True when the file exists and does not end in a newline.

        A worker killed mid-write leaves a torn final line.  Appending a
        fresh record directly after it would glue two JSON fragments onto
        one line and lose *both*; prepending a newline first quarantines
        the torn fragment on its own line, where ``_load`` skips it.
        """
        try:
            with open(self.path, "rb") as fh:
                fh.seek(-1, os.SEEK_END)
                return fh.read(1) != b"\n"
        except (FileNotFoundError, OSError):
            return False  # missing or empty file: nothing to repair

    def record(self, key: str, result: SweepResult) -> None:
        """Append one finished item and force it to disk."""
        kind = _KIND_SUMMARY if isinstance(result, RunSummary) else _KIND_FAILED
        entry: dict[str, Any] = {
            "key": key,
            "kind": kind,
            "data": result.record(),
        }
        self._records[key] = result
        prefix = "\n" if self._needs_newline() else ""
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(prefix + json.dumps(entry, default=str) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
