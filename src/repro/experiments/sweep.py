"""Parameter sweeps over scenarios.

Thin, deterministic glue between scenario configs and the process pool:

* :func:`replicate` — n seeds per config (seed derivation is stable under
  reordering, see :func:`repro.rng.derive_seed`);
* :func:`run_many` — run a list of configs, serial or parallel, preserving
  input order; with any resilience option set it switches to the crash-safe
  path (failures become :class:`~repro.reports.summary.FailedRun` records in
  place, optionally retried with fresh derived seeds and checkpointed to a
  resumable JSONL file);
* :func:`summarize_replicates` — average metric values over replicates.
"""

from __future__ import annotations

import math
import time
from collections.abc import Sequence

from repro.experiments.checkpoint import (
    SweepCheckpoint,
    SweepResult,
    config_fingerprint,
)
from repro.experiments.runner import run_scenario, run_scenario_safe
from repro.experiments.scenario import ScenarioConfig
from repro.parallel.pool import parallel_map
from repro.reports.summary import FailedRun, RunSummary
from repro.rng import RngFactory, derive_seed

#: Backoff shape for retry rounds: base * 2^(round-1) seconds, capped.
BACKOFF_BASE = 0.5
BACKOFF_CAP = 30.0


def backoff_delays(
    seed: int,
    attempts: int,
    *,
    base: float = BACKOFF_BASE,
    cap: float = BACKOFF_CAP,
) -> list[float]:
    """Exponential backoff with equal jitter, fully determined by *seed*.

    Delay for retry round ``k`` (1-based) is drawn from
    ``[w/2, w]`` where ``w = min(cap, base * 2**(k-1))`` — the classic
    equal-jitter scheme, except the jitter comes from a dedicated stream of
    a :class:`~repro.rng.RngFactory` seeded with *seed*, never from
    wall-clock or ambient randomness.  Two sweeps over the same grid
    therefore back off on an identical schedule (and a test can assert the
    exact sequence), while different sweeps still decorrelate their retry
    bursts against a shared machine.
    """
    stream = RngFactory(seed).stream("sweep.backoff")
    delays = []
    for k in range(1, attempts + 1):
        window = min(cap, base * (2.0 ** (k - 1)))
        delays.append(window * (0.5 + 0.5 * float(stream.random())))
    return delays


def replicate(config: ScenarioConfig, n: int) -> list[ScenarioConfig]:
    """*n* copies of *config* with independent, reproducible seeds."""
    return [
        config.replace(seed=derive_seed(config.seed, "replicate", i))
        for i in range(n)
    ]


def run_many(
    configs: Sequence[ScenarioConfig],
    workers: int | None = None,
    *,
    safe: bool = False,
    retries: int = 0,
    timeout: float | None = None,
    checkpoint: str | None = None,
    backoff_base: float = BACKOFF_BASE,
) -> list[SweepResult]:
    """Run every config; results are in input order.

    ``workers=None`` uses all cores minus one; ``workers=1`` forces serial.

    The default path propagates the first failure, exactly as before.  With
    ``safe=True`` (implied by ``retries``, ``timeout`` or ``checkpoint``)
    every failure — a raising scenario, a hung worker (``timeout`` seconds),
    or a dying worker process — is returned as a :class:`FailedRun` record
    in the failing config's slot instead of poisoning the sweep:

    * ``retries`` re-runs failed items up to that many extra times, each
      attempt with a fresh seed derived from the original (a pathological
      seed must not fail the grid point forever), after a seeded
      exponential-with-jitter backoff (:func:`backoff_delays`; transient
      resource exhaustion — OOM-killed workers, a saturated disk — needs
      breathing room, but the pause must stay deterministic per seed;
      ``backoff_base=0`` disables the sleep);
    * ``checkpoint`` appends each finished item to a JSONL file keyed by
      config fingerprint; re-running with the same path skips configs whose
      summaries are already recorded (``--resume`` in the CLI).
    """
    configs = list(configs)
    if not (safe or retries or timeout is not None or checkpoint):
        return parallel_map(run_scenario, configs, workers=workers)
    return _run_resilient(
        configs,
        workers=workers,
        retries=retries,
        timeout=timeout,
        checkpoint=SweepCheckpoint(checkpoint) if checkpoint else None,
        backoff_base=backoff_base,
    )


def _failed_from(config: ScenarioConfig, exc: BaseException) -> FailedRun:
    """A FailedRun for an item the worker never got to report on."""
    return FailedRun(
        scenario=config.name,
        policy=config.policy,
        seed=config.seed,
        error_type=type(exc).__name__,
        # concurrent.futures.TimeoutError stringifies to "" — say something.
        error_message=str(exc) or "no result (timed out or worker died)",
    )


def _run_resilient(
    configs: list[ScenarioConfig],
    workers: int | None,
    retries: int,
    timeout: float | None,
    checkpoint: SweepCheckpoint | None,
    backoff_base: float = BACKOFF_BASE,
) -> list[SweepResult]:
    keys = [config_fingerprint(c) for c in configs]
    # One backoff schedule per sweep, seeded from the grid itself so the
    # pause pattern replays exactly (and differs between unrelated sweeps).
    backoff = backoff_delays(
        derive_seed(configs[0].seed if configs else 0, "sweep.backoff"),
        retries,
        base=backoff_base,
    )
    results: dict[int, SweepResult] = {}
    if checkpoint is not None:
        for i, key in enumerate(keys):
            hit = checkpoint.completed(key)
            if hit is not None:
                results[i] = hit

    pending = [i for i in range(len(configs)) if i not in results]
    for attempt in range(retries + 1):
        if not pending:
            break
        if attempt > 0 and backoff[attempt - 1] > 0:
            time.sleep(backoff[attempt - 1])
        batch = []
        for i in pending:
            cfg = configs[i]
            if attempt > 0:
                # Fresh derived seed per retry: a crash tied to one seed's
                # event sequence must not fail the grid point forever.
                cfg = cfg.replace(seed=derive_seed(cfg.seed, "retry", attempt))
            if (
                checkpoint is not None
                and cfg.snapshot_every > 0
                and cfg.snapshot_to is None
            ):
                # Mid-run resume for killed workers: each grid point rolls
                # its own snapshot file next to the sweep checkpoint, keyed
                # by config fingerprint.  run_scenario_safe resumes from it
                # when present and removes it on success.  A retry changes
                # the seed, so a stale snapshot from the crashed attempt
                # fails the config match and is rebuilt from scratch.
                snap_dir = checkpoint.path.parent / (
                    checkpoint.path.name + ".snap"
                )
                cfg = cfg.replace(
                    snapshot_to=str(snap_dir / f"{keys[i]}.snap.gz")
                )
            batch.append(cfg)

        def write_through(batch_pos: int, result: SweepResult) -> None:
            if checkpoint is not None:
                checkpoint.record(keys[pending[batch_pos]], result)

        outcomes = parallel_map(
            run_scenario_safe,
            batch,
            workers=workers,
            timeout=timeout,
            on_error=_failed_from,
            on_result=write_through,
        )
        for i, outcome in zip(pending, outcomes):
            if isinstance(outcome, FailedRun):
                outcome = outcome.replace_attempts(attempt + 1)
            results[i] = outcome
        pending = [i for i in pending if isinstance(results[i], FailedRun)]
    return [results[i] for i in range(len(configs))]


def summarize_replicates(
    summaries: Sequence[SweepResult], metric: str
) -> float:
    """Mean of *metric* across replicate summaries, ignoring NaNs.

    :class:`FailedRun` records are skipped (a crashed replicate must not
    poison the surviving ones).  Returns NaN when every replicate is NaN or
    failed (e.g. overhead with zero deliveries).
    """
    values = [
        v
        for s in summaries
        if isinstance(s, RunSummary)
        and not math.isnan(v := float(getattr(s, metric)))
    ]
    if not values:
        return math.nan
    return sum(values) / len(values)
