"""Parameter sweeps over scenarios.

Thin, deterministic glue between scenario configs and the process pool:

* :func:`replicate` — n seeds per config (seed derivation is stable under
  reordering, see :func:`repro.rng.derive_seed`);
* :func:`run_many` — run a list of configs, serial or parallel, preserving
  input order;
* :func:`summarize_replicates` — average metric values over replicates.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.experiments.runner import run_scenario
from repro.experiments.scenario import ScenarioConfig
from repro.parallel.pool import parallel_map
from repro.reports.summary import RunSummary
from repro.rng import derive_seed


def replicate(config: ScenarioConfig, n: int) -> list[ScenarioConfig]:
    """*n* copies of *config* with independent, reproducible seeds."""
    return [
        config.replace(seed=derive_seed(config.seed, "replicate", i))
        for i in range(n)
    ]


def run_many(
    configs: Sequence[ScenarioConfig],
    workers: int | None = None,
) -> list[RunSummary]:
    """Run every config; results are in input order.

    ``workers=None`` uses all cores minus one; ``workers=1`` forces serial.
    """
    return parallel_map(run_scenario, list(configs), workers=workers)


def summarize_replicates(
    summaries: Sequence[RunSummary], metric: str
) -> float:
    """Mean of *metric* across replicate summaries, ignoring NaNs.

    Returns NaN when every replicate is NaN (e.g. overhead with zero
    deliveries).
    """
    values = [
        v
        for s in summaries
        if not math.isnan(v := float(getattr(s, metric)))
    ]
    if not values:
        return math.nan
    return sum(values) / len(values)
