"""Mobility model interface and the shared vectorized waypoint engine."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ConfigurationError, SimulationError


class MobilityModel(ABC):
    """Fleet-level mobility: owns and advances all node positions.

    Contract: :meth:`initialize` is called once with the fleet RNG before the
    run; :meth:`advance` is then called with non-decreasing times and returns
    the full ``(N, 2)`` position array (a live view — callers must not
    mutate it).
    """

    def __init__(self, n_nodes: int, area: tuple[float, float]) -> None:
        if n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1: {n_nodes}")
        width, height = area
        if width <= 0 or height <= 0:
            raise ConfigurationError(f"area must be positive: {area}")
        self.n_nodes = int(n_nodes)
        self.area = (float(width), float(height))
        self._time = 0.0
        self._initialized = False

    @abstractmethod
    def _setup(self, rng: np.random.Generator) -> None:
        """Draw initial state (positions, targets, ...)."""

    @abstractmethod
    def _step(self, dt: float) -> None:
        """Advance internal state by *dt* seconds."""

    @property
    @abstractmethod
    def positions(self) -> np.ndarray:
        """Current ``(N, 2)`` positions in meters."""

    def initialize(self, rng: np.random.Generator) -> None:
        """Reset to time 0 and draw the initial fleet state."""
        self._rng = rng
        self._time = 0.0
        self._setup(rng)
        self._initialized = True

    #: Largest dt handed to :meth:`_step` in one call; larger advances are
    #: subdivided so waypoint turnarounds are not skipped over.
    max_step: float = 1.0

    def advance(self, to_time: float) -> np.ndarray:
        """Advance the fleet to *to_time* and return positions."""
        if not self._initialized:
            raise SimulationError("mobility model used before initialize()")
        if to_time < self._time:
            raise SimulationError(
                f"mobility cannot rewind: {to_time} < {self._time}"
            )
        remaining = to_time - self._time
        while remaining > 1e-12:
            dt = min(remaining, self.max_step)
            self._step(dt)
            remaining -= dt
        self._time = to_time
        return self.positions

    def _uniform_positions(self, rng: np.random.Generator) -> np.ndarray:
        """Uniform initial placement over the area."""
        w, h = self.area
        return rng.uniform((0.0, 0.0), (w, h), size=(self.n_nodes, 2))


class WaypointEngine(MobilityModel):
    """Vectorized move-pause-retarget engine.

    Subclasses customize destination selection (:meth:`sample_targets`) —
    uniform for random-waypoint, hotspot-biased for the taxi model — and
    optionally speed/pause draws.  Movement follows straight lines at a
    per-leg speed; on arrival the node pauses (possibly zero) and then draws
    a new target.
    """

    def __init__(
        self,
        n_nodes: int,
        area: tuple[float, float],
        speed_range: tuple[float, float],
        pause_range: tuple[float, float] = (0.0, 0.0),
    ) -> None:
        super().__init__(n_nodes, area)
        lo, hi = speed_range
        if not 0 < lo <= hi:
            raise ConfigurationError(f"bad speed_range: {speed_range}")
        plo, phi = pause_range
        if not 0 <= plo <= phi:
            raise ConfigurationError(f"bad pause_range: {pause_range}")
        self.speed_range = (float(lo), float(hi))
        self.pause_range = (float(plo), float(phi))

    # -- hooks ---------------------------------------------------------------

    def sample_targets(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw *n* destination points; default is uniform over the area."""
        w, h = self.area
        return rng.uniform((0.0, 0.0), (w, h), size=(n, 2))

    def sample_speeds(self, n: int, rng: np.random.Generator) -> np.ndarray:
        lo, hi = self.speed_range
        if lo == hi:
            return np.full(n, lo)
        return rng.uniform(lo, hi, size=n)

    def sample_pauses(self, n: int, rng: np.random.Generator) -> np.ndarray:
        lo, hi = self.pause_range
        if hi == 0.0:
            return np.zeros(n)
        return rng.uniform(lo, hi, size=n)

    # -- engine ----------------------------------------------------------------

    def _setup(self, rng: np.random.Generator) -> None:
        n = self.n_nodes
        self._pos = self._uniform_positions(rng)
        self._target = self.sample_targets(n, rng)
        self._speed = self.sample_speeds(n, rng)
        self._pause_left = np.zeros(n)

    @property
    def positions(self) -> np.ndarray:
        return self._pos

    def _step(self, dt: float) -> None:
        rng = self._rng
        # Budget of travel time per node for this step, net of pauses.
        budget = np.full(self.n_nodes, dt)
        paused = self._pause_left > 0
        if paused.any():
            consumed = np.minimum(self._pause_left[paused], budget[paused])
            self._pause_left[paused] -= consumed
            budget[paused] -= consumed

        # A node can pass through at most a few waypoints per (small) step;
        # loop until every node's budget is spent.
        for _ in range(64):
            active = budget > 1e-12
            # Nodes that became paused mid-step consume budget from pause.
            pause_active = active & (self._pause_left > 0)
            if pause_active.any():
                consumed = np.minimum(
                    self._pause_left[pause_active], budget[pause_active]
                )
                self._pause_left[pause_active] -= consumed
                budget[pause_active] -= consumed
                active = budget > 1e-12
            if not active.any():
                break
            idx = np.nonzero(active & (self._pause_left <= 0))[0]
            if idx.size == 0:
                break
            vec = self._target[idx] - self._pos[idx]
            dist = np.hypot(vec[:, 0], vec[:, 1])
            reach = self._speed[idx] * budget[idx]
            arriving = reach >= dist
            moving = ~arriving

            move_idx = idx[moving]
            if move_idx.size:
                d = dist[moving]
                step = reach[moving] / np.maximum(d, 1e-12)
                self._pos[move_idx] += vec[moving] * step[:, None]
                budget[move_idx] = 0.0

            arrive_idx = idx[arriving]
            if arrive_idx.size:
                self._pos[arrive_idx] = self._target[arrive_idx]
                travel_time = dist[arriving] / self._speed[arrive_idx]
                budget[arrive_idx] -= travel_time
                k = arrive_idx.size
                self._target[arrive_idx] = self.sample_targets(k, rng)
                self._speed[arrive_idx] = self.sample_speeds(k, rng)
                self._pause_left[arrive_idx] = self.sample_pauses(k, rng)
        else:  # pragma: no cover - defensive: absurdly fast nodes
            raise SimulationError(
                "waypoint engine did not converge; speed too high for max_step"
            )
