"""Random-walk mobility.

Nodes pick a uniformly random heading and walk a fixed-length leg at a drawn
speed, reflecting off the area boundary.  One of the mobility classes for
which Groenevelt et al. [22] prove exponentially-tailed intermeeting times;
included so Fig. 3-style distribution checks can be repeated beyond the two
scenarios of the paper.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.mobility.base import MobilityModel


def reflect(coords: np.ndarray, limit: float) -> np.ndarray:
    """Reflect 1-D coordinates into ``[0, limit]`` (handles multiple bounces)."""
    period = 2.0 * limit
    folded = np.mod(coords, period)
    return np.where(folded > limit, period - folded, folded)


class RandomWalk(MobilityModel):
    """Fixed-leg-length random walk with boundary reflection."""

    def __init__(
        self,
        n_nodes: int,
        area: tuple[float, float],
        speed_range: tuple[float, float] = (2.0, 2.0),
        leg_length: float = 100.0,
    ) -> None:
        super().__init__(n_nodes, area)
        lo, hi = speed_range
        if not 0 < lo <= hi:
            raise ConfigurationError(f"bad speed_range: {speed_range}")
        if leg_length <= 0:
            raise ConfigurationError(f"leg_length must be positive: {leg_length}")
        self.speed_range = (float(lo), float(hi))
        self.leg_length = float(leg_length)

    def _setup(self, rng: np.random.Generator) -> None:
        n = self.n_nodes
        self._pos = self._uniform_positions(rng)
        self._draw_legs(np.arange(n))

    def _draw_legs(self, idx: np.ndarray) -> None:
        rng = self._rng
        k = idx.size
        if not hasattr(self, "_heading"):
            self._heading = np.zeros(self.n_nodes)
            self._speed = np.zeros(self.n_nodes)
            self._leg_left = np.zeros(self.n_nodes)
        self._heading[idx] = rng.uniform(0.0, 2.0 * np.pi, size=k)
        lo, hi = self.speed_range
        self._speed[idx] = lo if lo == hi else rng.uniform(lo, hi, size=k)
        self._leg_left[idx] = self.leg_length

    @property
    def positions(self) -> np.ndarray:
        return self._pos

    def _step(self, dt: float) -> None:
        w, h = self.area
        advance = np.minimum(self._speed * dt, self._leg_left)
        self._pos[:, 0] += np.cos(self._heading) * advance
        self._pos[:, 1] += np.sin(self._heading) * advance
        # Reflect out-of-bounds coordinates back into the area; the heading
        # flip is equivalent to redrawing on the next leg for this model's
        # statistics, so we simply mirror the position.
        self._pos[:, 0] = reflect(self._pos[:, 0], w)
        self._pos[:, 1] = reflect(self._pos[:, 1], h)
        self._leg_left -= advance
        done = self._leg_left <= 1e-9
        if done.any():
            self._draw_legs(np.nonzero(done)[0])
