"""Map-based mobility: movement constrained to a street graph.

ONE's distinguishing mobility feature is map-constrained movement —
pedestrians/vehicles pick destinations and follow shortest paths along the
road network rather than straight lines.  This model implements the same
idea on a :mod:`networkx` graph whose nodes carry ``pos=(x, y)`` attributes:
each simulated node walks the Euclidean-shortest path to a uniformly chosen
map vertex, pauses, and repeats.

Unlike the fleet-vectorized models, path following here is per-node Python
(paths have irregular lengths); it is intended for moderate fleets and for
scenarios where the street-grid topology matters (e.g. contact hot spots at
intersections).  :func:`grid_map` builds a jittered Manhattan street grid to
get started without map data.
"""

from __future__ import annotations

import math

import networkx as nx
import numpy as np

from repro.errors import ConfigurationError
from repro.mobility.base import MobilityModel
from repro.rng import RngFactory


def grid_map(
    cols: int,
    rows: int,
    spacing: float = 200.0,
    jitter: float = 0.0,
    rng: np.random.Generator | None = None,
) -> nx.Graph:
    """A cols × rows street grid with optional intersection jitter.

    Edge weights are Euclidean lengths (the shortest-path metric).
    """
    if cols < 2 or rows < 2:
        raise ConfigurationError("grid needs at least 2x2 intersections")
    if spacing <= 0:
        raise ConfigurationError(f"spacing must be positive: {spacing}")
    if rng is None:
        # Map geometry is a build-time input, identical for every run and
        # every seed — a fixed seed here is the documented intent, not a
        # determinism leak (pass an rng to randomize the map per scenario).
        rng = RngFactory(0).stream("mobility.map.jitter")  # reprolint: disable=REP101
    graph = nx.grid_2d_graph(cols, rows)
    pos: dict[tuple[int, int], tuple[float, float]] = {}
    for cx, cy in graph.nodes:
        # Vertex jitter perturbs static map geometry (not per-run state), so
        # one shared stream across the vertex loop is fine.
        dx, dy = (rng.uniform(-jitter, jitter, size=2) if jitter > 0  # reprolint: disable=REP101
                  else (0.0, 0.0))
        pos[(cx, cy)] = (cx * spacing + float(dx), cy * spacing + float(dy))
    nx.set_node_attributes(graph, pos, "pos")
    for u, v in graph.edges:
        (x1, y1), (x2, y2) = pos[u], pos[v]
        graph.edges[u, v]["weight"] = math.hypot(x2 - x1, y2 - y1)
    return graph


class MapBasedMobility(MobilityModel):
    """Shortest-path movement over a street graph."""

    def __init__(
        self,
        n_nodes: int,
        graph: nx.Graph,
        speed_range: tuple[float, float] = (1.0, 2.0),
        pause_range: tuple[float, float] = (0.0, 0.0),
    ) -> None:
        if graph.number_of_nodes() < 2:
            raise ConfigurationError("map needs at least 2 vertices")
        if not nx.is_connected(graph):
            raise ConfigurationError("map graph must be connected")
        missing = [v for v, d in graph.nodes(data=True) if "pos" not in d]
        if missing:
            raise ConfigurationError(
                f"{len(missing)} map vertices lack a 'pos' attribute"
            )
        coords = np.array([graph.nodes[v]["pos"] for v in graph.nodes])
        width = float(coords[:, 0].max()) - min(0.0, float(coords[:, 0].min()))
        height = float(coords[:, 1].max()) - min(0.0, float(coords[:, 1].min()))
        super().__init__(n_nodes, (max(width, 1.0), max(height, 1.0)))
        lo, hi = speed_range
        if not 0 < lo <= hi:
            raise ConfigurationError(f"bad speed_range: {speed_range}")
        plo, phi = pause_range
        if not 0 <= plo <= phi:
            raise ConfigurationError(f"bad pause_range: {pause_range}")
        self.graph = graph
        self.speed_range = (float(lo), float(hi))
        self.pause_range = (float(plo), float(phi))
        self._vertices = list(graph.nodes)

    # -- setup -----------------------------------------------------------------

    def _setup(self, rng: np.random.Generator) -> None:
        n = self.n_nodes
        self._pos = np.zeros((n, 2))
        # Map-based mobility is not snapshot-capable: capture.py raises
        # SnapshotError for it, so uncaptured route state cannot drift.
        self._at_vertex: list = [None] * n  # reprolint: disable=REP103
        self._route: list[list[tuple[float, float]]] = [[] for _ in range(n)]  # reprolint: disable=REP103
        self._speed = np.zeros(n)
        self._pause_left = np.zeros(n)
        for i in range(n):
            start = self._vertices[int(rng.integers(len(self._vertices)))]
            self._at_vertex[i] = start
            self._pos[i] = self.graph.nodes[start]["pos"]
            self._new_route(i, rng)

    def _new_route(self, i: int, rng: np.random.Generator) -> None:
        """Pick a destination vertex and lay out its waypoint polyline."""
        src = self._at_vertex[i]
        while True:
            dst = self._vertices[int(rng.integers(len(self._vertices)))]
            if dst != src:
                break
        path = nx.shortest_path(self.graph, src, dst, weight="weight")
        self._route[i] = [tuple(self.graph.nodes[v]["pos"]) for v in path[1:]]
        self._at_vertex[i] = dst
        lo, hi = self.speed_range
        self._speed[i] = lo if lo == hi else float(rng.uniform(lo, hi))
        plo, phi = self.pause_range
        self._pause_left[i] = 0.0 if phi == 0 else float(rng.uniform(plo, phi))

    @property
    def positions(self) -> np.ndarray:
        return self._pos

    # -- stepping ----------------------------------------------------------------

    def _step(self, dt: float) -> None:
        rng = self._rng
        for i in range(self.n_nodes):
            budget = dt
            if self._pause_left[i] > 0:
                consumed = min(self._pause_left[i], budget)
                self._pause_left[i] -= consumed
                budget -= consumed
            x, y = self._pos[i]
            speed = self._speed[i]
            guard = 0
            while budget > 1e-12:
                guard += 1
                if guard > 10_000:  # pragma: no cover - defensive
                    raise ConfigurationError(
                        "map step did not converge; degenerate edge lengths?"
                    )
                if not self._route[i]:
                    self._new_route(i, rng)
                    if self._pause_left[i] > 0:
                        consumed = min(self._pause_left[i], budget)
                        self._pause_left[i] -= consumed
                        budget -= consumed
                        continue
                tx, ty = self._route[i][0]
                dist = math.hypot(tx - x, ty - y)
                reach = speed * budget
                if reach < dist:
                    frac = reach / dist
                    x += (tx - x) * frac
                    y += (ty - y) * frac
                    budget = 0.0
                else:
                    x, y = tx, ty
                    budget -= dist / speed
                    self._route[i].pop(0)
            self._pos[i, 0] = x
            self._pos[i, 1] = y
