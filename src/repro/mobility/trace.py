"""Movement trace playback.

:class:`TraceMobility` replays recorded positions sampled on a shared time
grid, with linear interpolation between samples — this is how the paper
plugs the EPFL taxi GPS data into ONE.  Irregular per-node GPS samples (the
CRAWDAD cabspotting format) are resampled onto a grid by
:meth:`TraceMobility.from_node_samples`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.mobility.base import MobilityModel


class TraceMobility(MobilityModel):
    """Playback of an ``(T, N, 2)`` position tensor over grid times ``(T,)``.

    Positions before the first sample hold at the first sample; positions
    after the last sample hold at the last sample (a parked taxi, not an
    error), so a trace shorter than the simulation still runs.
    """

    def __init__(self, times: np.ndarray, positions: np.ndarray) -> None:
        times = np.asarray(times, dtype=float)
        positions = np.asarray(positions, dtype=float)
        if times.ndim != 1 or times.size < 2:
            raise ConfigurationError("trace needs at least 2 time samples")
        if np.any(np.diff(times) <= 0):
            raise ConfigurationError("trace times must be strictly increasing")
        if positions.ndim != 3 or positions.shape[0] != times.size or positions.shape[2] != 2:
            raise ConfigurationError(
                f"positions must have shape (T, N, 2) with T={times.size}, "
                f"got {positions.shape}"
            )
        n_nodes = positions.shape[1]
        width = float(positions[..., 0].max()) + 1.0
        height = float(positions[..., 1].max()) + 1.0
        super().__init__(n_nodes, (max(width, 1.0), max(height, 1.0)))
        self._times = times
        self._samples = positions

    # Playback needs no sub-stepping: interpolation is exact at any t.
    max_step = float("inf")

    @classmethod
    def from_node_samples(
        cls,
        node_samples: list[tuple[np.ndarray, np.ndarray]],
        grid_step: float = 30.0,
        duration: float | None = None,
    ) -> "TraceMobility":
        """Resample irregular per-node ``(times, (k,2) positions)`` onto a grid.

        This is the bridge from cabspotting-style GPS logs (one update every
        ~10-60 s per taxi, unaligned) to the vectorized playback format.
        """
        if not node_samples:
            raise ConfigurationError("node_samples must be non-empty")
        if grid_step <= 0:
            raise ConfigurationError(f"grid_step must be positive: {grid_step}")
        if duration is None:
            duration = max(float(t[-1]) for t, _ in node_samples)
        grid = np.arange(0.0, duration + grid_step, grid_step)
        out = np.empty((grid.size, len(node_samples), 2))
        for i, (t, p) in enumerate(node_samples):
            t = np.asarray(t, dtype=float)
            p = np.asarray(p, dtype=float)
            if t.ndim != 1 or p.shape != (t.size, 2) or t.size < 1:
                raise ConfigurationError(
                    f"node {i}: need times (k,) and positions (k, 2), k >= 1"
                )
            if np.any(np.diff(t) < 0):
                raise ConfigurationError(f"node {i}: times must be non-decreasing")
            out[:, i, 0] = np.interp(grid, t, p[:, 0])
            out[:, i, 1] = np.interp(grid, t, p[:, 1])
        return cls(grid, out)

    def _setup(self, rng: np.random.Generator) -> None:
        self._pos = self._interp(0.0)

    @property
    def positions(self) -> np.ndarray:
        return self._pos

    def _step(self, dt: float) -> None:
        self._pos = self._interp(self._time + dt)

    def _interp(self, t: float) -> np.ndarray:
        times = self._times
        if t <= times[0]:
            return self._samples[0].copy()
        if t >= times[-1]:
            return self._samples[-1].copy()
        hi = int(np.searchsorted(times, t, side="right"))
        lo = hi - 1
        span = times[hi] - times[lo]
        w = (t - times[lo]) / span
        return (1.0 - w) * self._samples[lo] + w * self._samples[hi]

    def advance(self, to_time: float) -> np.ndarray:
        # Direct interpolation — overriding avoids pointless sub-stepping.
        if not self._initialized:
            raise SimulationError("mobility model used before initialize()")
        if to_time < self._time:
            raise SimulationError(f"mobility cannot rewind: {to_time} < {self._time}")
        self._time = to_time
        self._pos = self._interp(to_time)
        return self._pos
