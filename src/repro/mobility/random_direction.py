"""Random-direction mobility.

Nodes pick a heading and travel until they hit the area boundary, optionally
pause, then pick a new heading into the interior.  Unlike random-waypoint,
the stationary node distribution is uniform (no center bias); included for
the same reason as :mod:`repro.mobility.random_walk` (third mobility class
covered by the exponential-intermeeting result [22]).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.mobility.base import MobilityModel


class RandomDirection(MobilityModel):
    """Travel-to-boundary movement with redraw on wall contact."""

    def __init__(
        self,
        n_nodes: int,
        area: tuple[float, float],
        speed_range: tuple[float, float] = (2.0, 2.0),
        pause_range: tuple[float, float] = (0.0, 0.0),
    ) -> None:
        super().__init__(n_nodes, area)
        lo, hi = speed_range
        if not 0 < lo <= hi:
            raise ConfigurationError(f"bad speed_range: {speed_range}")
        plo, phi = pause_range
        if not 0 <= plo <= phi:
            raise ConfigurationError(f"bad pause_range: {pause_range}")
        self.speed_range = (float(lo), float(hi))
        self.pause_range = (float(plo), float(phi))

    def _setup(self, rng: np.random.Generator) -> None:
        n = self.n_nodes
        self._pos = self._uniform_positions(rng)
        self._heading = np.zeros(n)
        self._speed = np.zeros(n)
        self._pause_left = np.zeros(n)
        self._redraw(np.arange(n))

    def _redraw(self, idx: np.ndarray) -> None:
        """New heading + speed for nodes at a wall (or at setup)."""
        rng = self._rng
        k = idx.size
        self._heading[idx] = rng.uniform(0.0, 2.0 * np.pi, size=k)
        lo, hi = self.speed_range
        self._speed[idx] = lo if lo == hi else rng.uniform(lo, hi, size=k)

    @property
    def positions(self) -> np.ndarray:
        return self._pos

    def _step(self, dt: float) -> None:
        w, h = self.area
        budget = np.full(self.n_nodes, dt)
        paused = self._pause_left > 0
        if paused.any():
            consumed = np.minimum(self._pause_left[paused], budget[paused])
            self._pause_left[paused] -= consumed
            budget[paused] -= consumed
        moving = budget > 1e-12
        if not moving.any():
            return
        adv = self._speed * budget * moving
        self._pos[:, 0] += np.cos(self._heading) * adv
        self._pos[:, 1] += np.sin(self._heading) * adv
        hit = (
            (self._pos[:, 0] <= 0.0)
            | (self._pos[:, 0] >= w)
            | (self._pos[:, 1] <= 0.0)
            | (self._pos[:, 1] >= h)
        )
        if hit.any():
            # Clamp to the wall, pause, and head back into the interior.
            self._pos[hit, 0] = np.clip(self._pos[hit, 0], 0.0, w)
            self._pos[hit, 1] = np.clip(self._pos[hit, 1], 0.0, h)
            idx = np.nonzero(hit)[0]
            self._redraw(idx)
            plo, phi = self.pause_range
            if phi > 0:
                self._pause_left[idx] = self._rng.uniform(plo, phi, size=idx.size)
