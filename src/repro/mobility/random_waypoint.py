"""Random-waypoint mobility (the paper's synthetic scenario).

Each node repeatedly picks a uniform destination in the area and walks to it
in a straight line ("selecting a destination randomly and walking along the
shortest path to reach the destination", Sec. IV-A), at the paper's fixed
speed of 2 m/s unless configured otherwise.
"""

from __future__ import annotations

from repro.mobility.base import WaypointEngine


class RandomWaypoint(WaypointEngine):
    """Uniform-destination waypoint movement.

    Parameters
    ----------
    n_nodes, area:
        Fleet size and (width, height) of the simulation area in meters.
    speed_range:
        Per-leg speed draw; the paper uses a constant 2 m/s, i.e.
        ``(2.0, 2.0)``.
    pause_range:
        Pause at each waypoint; the paper's scenario moves continuously,
        i.e. ``(0.0, 0.0)``.
    """

    def __init__(
        self,
        n_nodes: int,
        area: tuple[float, float],
        speed_range: tuple[float, float] = (2.0, 2.0),
        pause_range: tuple[float, float] = (0.0, 0.0),
    ) -> None:
        super().__init__(n_nodes, area, speed_range, pause_range)
