"""Mobility substrate.

All models are **fleet-level**: one model instance owns the positions of all
N nodes and advances them vectorized with NumPy (per the hpc guides, the
movement inner loop is the hot path together with contact detection).

Models:

* :class:`repro.mobility.random_waypoint.RandomWaypoint` — the paper's
  synthetic scenario (Table II).
* :class:`repro.mobility.random_walk.RandomWalk` and
  :class:`repro.mobility.random_direction.RandomDirection` — the other two
  mobility classes for which [22] proves exponential intermeeting tails.
* :class:`repro.mobility.stationary.Stationary` — fixed topologies (tests).
* :class:`repro.mobility.trace.TraceMobility` — playback of recorded
  movement (regular time grid, vectorized interpolation).
* :class:`repro.mobility.taxi.TaxiFleet` — synthetic San-Francisco-taxi-like
  mobility standing in for the EPFL/CRAWDAD trace (see DESIGN.md §1).
* :class:`repro.mobility.map_based.MapBasedMobility` — ONE-style movement
  constrained to a street graph (networkx), with :func:`grid_map` to build
  jittered Manhattan grids.
"""

from repro.mobility.base import MobilityModel, WaypointEngine
from repro.mobility.map_based import MapBasedMobility, grid_map
from repro.mobility.random_direction import RandomDirection
from repro.mobility.random_walk import RandomWalk
from repro.mobility.random_waypoint import RandomWaypoint
from repro.mobility.stationary import Stationary
from repro.mobility.taxi import TaxiFleet
from repro.mobility.trace import TraceMobility

__all__ = [
    "MapBasedMobility",
    "MobilityModel",
    "RandomDirection",
    "RandomWalk",
    "RandomWaypoint",
    "Stationary",
    "TaxiFleet",
    "TraceMobility",
    "WaypointEngine",
    "grid_map",
]
