"""Synthetic San-Francisco-taxi-fleet mobility (EPFL/CRAWDAD substitute).

The paper's second scenario replays the EPFL ``cabspotting`` GPS trace (200
taxis, 30 days).  That dataset is not redistributable and is unavailable
offline, so this model synthesizes taxi-like movement with the statistical
features the paper's analysis actually relies on (see DESIGN.md §1):

* **spatial aggregation** — taxis concentrate around a small set of hotspots
  (downtown, airport, stations), so some node pairs meet far more often than
  others ("obvious aggregation phenomenon", Sec. IV-B-2);
* **fewer contacts than random-waypoint** — long cross-town trips with the
  fleet spread over a larger area ("the nodes cannot contact each other as
  frequently", Sec. IV-B-2);
* **approximately exponential intermeeting tails** (Fig. 3b) — emerges from
  the mixture of hotspot returns, verified in
  ``tests/mobility/test_taxi.py`` and the Fig. 3 benchmark.

Mechanically each taxi alternates fares: pick a destination (hotspot-biased
with probability ``hotspot_prob``, else uniform), drive straight at a drawn
street speed, then idle a short pickup pause.  Hotspot weights follow a Zipf
profile so one "downtown" dominates, like the real trace.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.mobility.base import WaypointEngine

#: Defaults chosen to mimic the cabspotting fleet: an ~8 km x 8 km city,
#: urban driving speeds, short passenger-pickup idles.
DEFAULT_AREA = (8000.0, 8000.0)
DEFAULT_SPEED = (4.0, 14.0)
DEFAULT_PAUSE = (10.0, 120.0)


class TaxiFleet(WaypointEngine):
    """Hotspot-biased waypoint mobility imitating a taxi fleet.

    Parameters
    ----------
    n_nodes:
        Fleet size (paper: first 200 taxis).
    area:
        City extent in meters.
    n_hotspots:
        Number of attraction points; drawn once per run from the fleet RNG.
    hotspot_prob:
        Probability that a fare ends at a hotspot rather than a uniform point.
    hotspot_sigma:
        Gaussian scatter (meters) of destinations around their hotspot.
    """

    def __init__(
        self,
        n_nodes: int,
        area: tuple[float, float] = DEFAULT_AREA,
        speed_range: tuple[float, float] = DEFAULT_SPEED,
        pause_range: tuple[float, float] = DEFAULT_PAUSE,
        n_hotspots: int = 6,
        hotspot_prob: float = 0.75,
        hotspot_sigma: float = 250.0,
    ) -> None:
        super().__init__(n_nodes, area, speed_range, pause_range)
        if n_hotspots < 1:
            raise ConfigurationError(f"n_hotspots must be >= 1: {n_hotspots}")
        if not 0.0 <= hotspot_prob <= 1.0:
            raise ConfigurationError(f"hotspot_prob must be in [0,1]: {hotspot_prob}")
        if hotspot_sigma <= 0:
            raise ConfigurationError(f"hotspot_sigma must be positive: {hotspot_sigma}")
        self.n_hotspots = int(n_hotspots)
        self.hotspot_prob = float(hotspot_prob)
        self.hotspot_sigma = float(hotspot_sigma)

    def _setup(self, rng: np.random.Generator) -> None:
        w, h = self.area
        # Hotspots live in the central 60% of the city so their gaussian
        # scatter rarely needs clipping.
        self._hotspots = rng.uniform((0.2 * w, 0.2 * h), (0.8 * w, 0.8 * h),
                                     size=(self.n_hotspots, 2))
        # Zipf-style weights: hotspot 1 is "downtown".
        ranks = np.arange(1, self.n_hotspots + 1, dtype=float)
        self._weights = (1.0 / ranks) / np.sum(1.0 / ranks)
        super()._setup(rng)
        # Taxis start clustered near hotspots (shift start of day).
        self._pos = self.sample_targets(self.n_nodes, rng)

    def sample_targets(self, n: int, rng: np.random.Generator) -> np.ndarray:
        w, h = self.area
        out = rng.uniform((0.0, 0.0), (w, h), size=(n, 2))
        to_hotspot = rng.random(n) < self.hotspot_prob
        k = int(to_hotspot.sum())
        if k:
            which = rng.choice(self.n_hotspots, size=k, p=self._weights)
            scatter = rng.normal(0.0, self.hotspot_sigma, size=(k, 2))
            pts = self._hotspots[which] + scatter
            pts[:, 0] = np.clip(pts[:, 0], 0.0, w)
            pts[:, 1] = np.clip(pts[:, 1], 0.0, h)
            out[to_hotspot] = pts
        return out

    @property
    def hotspots(self) -> np.ndarray:
        """The hotspot coordinates drawn for this run (read-only view)."""
        return self._hotspots
