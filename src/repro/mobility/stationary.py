"""Stationary placement — nodes never move.

Used by unit/integration tests to build exact topologies (e.g. two nodes in
range, a chain, a disconnected pair) so routing behaviour can be asserted
deterministically.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.mobility.base import MobilityModel


class Stationary(MobilityModel):
    """Fixed node positions.

    Parameters
    ----------
    points:
        Optional explicit ``(N, 2)`` coordinates.  When omitted, positions
        are drawn uniformly at initialize time.
    """

    def __init__(
        self,
        n_nodes: int,
        area: tuple[float, float],
        points: np.ndarray | list[tuple[float, float]] | None = None,
    ) -> None:
        super().__init__(n_nodes, area)
        if points is not None:
            arr = np.asarray(points, dtype=float)
            if arr.shape != (n_nodes, 2):
                raise ConfigurationError(
                    f"points must have shape ({n_nodes}, 2), got {arr.shape}"
                )
            self._fixed: np.ndarray | None = arr
        else:
            self._fixed = None

    # Large steps are fine for motionless nodes.
    max_step = float("inf")

    def _setup(self, rng: np.random.Generator) -> None:
        if self._fixed is not None:
            self._pos = self._fixed.copy()
        else:
            self._pos = self._uniform_positions(rng)

    @property
    def positions(self) -> np.ndarray:
        return self._pos

    def _step(self, dt: float) -> None:
        pass
