"""Periodic in-run snapshotting.

A :class:`PeriodicSnapshotter` rides the event queue at
:data:`~repro.engine.events.PRIORITY_SNAPSHOT` (after every same-instant
simulation event) and captures the full simulator state every ``every``
simulated seconds.  It is **observation-only**: capturing draws no random
numbers, emits no events and mutates no component, so a run with
snapshotting enabled is byte-identical to one without.

Each firing keeps the capture in memory (:attr:`latest`) and, when a path
is configured, writes it to disk atomically — the file is a rolling "last
known good state" that :func:`repro.experiments.runner.run_scenario_safe`
and the sweep engine use to resume crashed runs mid-simulation.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Any

from repro.engine.events import PRIORITY_SNAPSHOT
from repro.snapshot.capture import save
from repro.snapshot.codec import Snapshot, write_snapshot

__all__ = ["PeriodicSnapshotter"]


class PeriodicSnapshotter:
    """Capture (and optionally persist) simulator state on a fixed cadence."""

    def __init__(
        self, built: Any, every: float, path: str | Path | None = None
    ) -> None:
        if every <= 0:
            raise ValueError(f"snapshot interval must be positive: {every}")
        self.built = built
        self.every = float(every)
        self.path = None if path is None else Path(path)
        #: Most recent capture (None until the first firing).
        self.latest: Snapshot | None = None
        #: Absolute time of the next scheduled capture (NaN once the cadence
        #: has run past the horizon).  Captured into snapshots so a restored
        #: run keeps the same cadence.
        self._next_at = float("nan")

    def start(self) -> None:
        """Arm the first capture ``every`` seconds from now."""
        self.rearm(self.built.sim.now + self.every)

    def rearm(self, next_at: float) -> None:
        """(Re-)schedule the next capture at *next_at* (restore path).

        NaN, or a time past the horizon, parks the cadence.
        """
        sim = self.built.sim
        if math.isnan(next_at) or next_at > sim.end_time:
            self._next_at = float("nan")
            return
        self._next_at = float(next_at)
        sim.schedule_at(next_at, self._fire, priority=PRIORITY_SNAPSHOT)

    def _fire(self) -> None:
        # Arm the next event BEFORE capturing so the snapshot records the
        # follow-up cadence, not the firing that produced it.
        self.rearm(self.built.sim.now + self.every)
        self.latest = save(self.built)
        if self.path is not None:
            write_snapshot(self.latest, self.path)
