"""Deterministic simulation checkpointing (see docs/checkpointing.md).

``save``/``restore`` round-trip the *complete* simulator state — clock,
event cursors, RNG streams, mobility, buffers, routing and policy state,
collectors, fault cursors and in-flight transfers — such that a restored
run continues byte-identically to the uninterrupted original.  ``fork``
branches what-if runs off a snapshot (new seed and/or extended horizon).

The on-disk format (gzip JSON + checksum, written atomically) lives in
:mod:`repro.snapshot.codec`; periodic in-run capture in
:mod:`repro.snapshot.snapshotter`.
"""

from repro.errors import SnapshotError
from repro.snapshot.capture import encode_config, save
from repro.snapshot.codec import (
    SCHEMA_VERSION,
    Snapshot,
    read_snapshot,
    write_snapshot,
)
from repro.snapshot.restore import decode_config, fork, restore
from repro.snapshot.snapshotter import PeriodicSnapshotter

__all__ = [
    "SCHEMA_VERSION",
    "PeriodicSnapshotter",
    "Snapshot",
    "SnapshotError",
    "decode_config",
    "encode_config",
    "fork",
    "read_snapshot",
    "restore",
    "save",
    "write_snapshot",
]
