"""Rebuild a running simulation from a captured snapshot.

:func:`restore` rebuilds the scenario from its config (via
``build_scenario``), discards the freshly-scheduled bootstrap events, and
overwrites every piece of component state from the snapshot payload.
Pending events are then *re-armed* from their captured cursors in a fixed
order chosen so that same-instant ties resolve exactly as they would have
in the uninterrupted run:

1. named recurring chains (world tick, reports, obs sampling) in their
   registration order,
2. the traffic generator's next-arrival event,
3. fault-plan events (churn square waves replayed from phase cursors, then
   the next link-flap),
4. in-flight transfer completions, in transfer-sequence order,
5. the periodic snapshotter itself.

Recurring chains re-arm before transfers because a transfer whose ETA
lands exactly on a sampling instant was necessarily scheduled *after* that
sample's chain event in the original run (transfer durations are shorter
than the sampling intervals used here; longer-than-interval transfers are
the one tie class this ordering does not cover).

:func:`fork` is the what-if entry point: same state, optionally a new seed
(fresh randomness from the divergence point) and a whitelisted set of
config overrides (e.g. a longer horizon).
"""

from __future__ import annotations

import dataclasses
import math
from collections import deque
from typing import Any

from repro.core.dropped_list import DropRecord
from repro.core.intermeeting import (
    MinIntermeetingEstimator,
    PairIntermeetingEstimator,
    StaticIntermeetingEstimator,
    _RunningMean,
)
from repro.core.oracle import _InfectionState
from repro.core.sdsrp import SdsrpPolicy
from repro.errors import ConfigurationError, SnapshotError
from repro.mobility.base import WaypointEngine
from repro.mobility.random_direction import RandomDirection
from repro.mobility.random_walk import RandomWalk
from repro.mobility.stationary import Stationary
from repro.mobility.taxi import TaxiFleet
from repro.mobility.trace import TraceMobility
from repro.net.message import Message
from repro.net.transfer import Transfer
from repro.policies.fifo import FifoPolicy
from repro.policies.lifo import LifoPolicy
from repro.policies.mofo import MofoPolicy
from repro.policies.random_drop import RandomPolicy
from repro.routing.prophet import ProphetRouter
from repro.routing.spray_and_focus import SprayAndFocusRouter
from repro.snapshot.codec import Snapshot, decode_array

__all__ = ["decode_config", "fork", "restore"]

#: Config fields :func:`fork` may override.  Anything else would make the
#: captured state inconsistent with the rebuilt scenario (different fleet,
#: different routing, different traffic law...).
FORK_OVERRIDES = frozenset({"sim_time", "name", "snapshot_every", "snapshot_to"})

_TUPLE_FIELDS = (
    "area", "speed_range", "pause_range", "interval_range",
    "message_size_range", "shard_kill",
)


def decode_config(data: dict[str, Any]) -> Any:
    """Inverse of :func:`repro.snapshot.capture.encode_config`."""
    from repro.experiments.scenario import ScenarioConfig
    from repro.faults.plan import FaultPlan

    known = {f.name for f in dataclasses.fields(ScenarioConfig)}
    unknown = set(data) - known
    if unknown:
        raise SnapshotError(
            f"snapshot config has unknown fields {sorted(unknown)}; was it "
            "written by a newer build?"
        )
    kwargs = dict(data)
    for key in _TUPLE_FIELDS:
        if isinstance(kwargs.get(key), list):
            kwargs[key] = tuple(kwargs[key])
    if isinstance(kwargs.get("faults"), dict):
        kwargs["faults"] = FaultPlan.from_dict(kwargs["faults"])
    return ScenarioConfig(**kwargs)


def restore(
    snapshot: Snapshot,
    *,
    config: Any | None = None,
    skip_rng: bool = False,
) -> Any:
    """Rebuild a ``BuiltSimulation`` positioned exactly at the snapshot.

    ``sim.run()`` (or ``run_built``) on the result continues the original
    run byte-identically.  *config* substitutes a forked configuration
    (:func:`fork` uses this); *skip_rng* leaves the freshly-seeded RNG
    streams in place instead of restoring the captured stream states.
    """
    from repro.experiments.runner import build_scenario

    if config is None:
        config = decode_config(snapshot.config)
    built = build_scenario(config)
    sim = built.sim
    state = snapshot.state
    t = float(state["t"])
    if t > sim.end_time:
        raise SnapshotError(
            f"snapshot taken at t={t} but scenario horizon is {sim.end_time}"
        )

    # Drop the bootstrap events scheduled by build_scenario; everything is
    # re-armed from captured cursors below.
    sim.queue.clear()
    if t > sim.clock.now:
        sim.clock.advance_to(t)
    sim._events_processed = int(state["events_processed"])

    if not skip_rng and state["rng"] is not None:
        if built.rng is None:
            raise SnapshotError("rebuilt scenario has no RngFactory")
        built.rng.restore_state(state["rng"])

    _restore_mobility(built.world.mobility, state["mobility"])
    built.world.positions = built.world.mobility.positions
    _restore_world(built.world, state["world"])

    gen_state = state["generator"]
    built.generator.created = int(gen_state["created"])
    built.generator._next_at = float(gen_state["next_at"])

    _restore_nodes(built, state["nodes"])
    _restore_shared(built.shared, state["shared"])
    _restore_metrics(built.metrics, state["metrics"])
    _restore_contacts(built.contacts, state["contacts"])
    _restore_buffer_report(built.buffer_report, state["buffer_report"])
    _restore_sanitizer(built.sanitizer, state["sanitizer"])
    _restore_timeseries(built.timeseries, state["timeseries"])
    _restore_trace(built.trace, state["trace"])
    _restore_profiler(built.profiler, state["profiler"])
    _restore_fault_state(built.fault_injector, state["faults"])

    # -- re-arm pending events (tie-safe order; see module docstring) ------
    recurring = state["recurring"]
    for name in built.sim._recurring:
        if name not in recurring:
            raise SnapshotError(
                f"snapshot has no cursor for recurring chain {name!r}"
            )
        sim.rearm_recurring(name, float(recurring[name]))
    unknown_chains = set(recurring) - set(built.sim._recurring)
    if unknown_chains:
        raise SnapshotError(
            f"snapshot carries unknown recurring chains {sorted(unknown_chains)}"
        )
    built.generator.rearm()
    if built.fault_injector is not None and state["faults"] is not None:
        built.fault_injector._schedule_churn_events(after=t)
        built.fault_injector.rearm_flap()
        built.fault_injector._schedule_scripted(after=t)
    _restore_transfers(built, state["transfers"])
    snap_state = state.get("snapshotter")
    if getattr(built, "snapshotter", None) is not None:
        if snap_state is not None:
            built.snapshotter.rearm(float(snap_state["next_at"]))
        else:
            # Snapshotting enabled by a fork override: start a fresh cadence
            # from the restore point.
            built.snapshotter.rearm(sim.now + built.snapshotter.every)
    return built


def fork(
    snapshot: Snapshot,
    *,
    seed: int | None = None,
    overrides: dict[str, Any] | None = None,
) -> Any:
    """Branch a what-if run off a snapshot.

    With no arguments this is an exact continuation (same as
    :func:`restore`).  *seed* reseeds every RNG stream so the branch
    diverges stochastically from the capture point onward; *overrides*
    may adjust :data:`FORK_OVERRIDES` fields (e.g. extend ``sim_time``).

    Note: recurring chains that had already run past the *original* horizon
    at capture time stay exhausted even if the fork extends the horizon —
    extend before the chains wind down, not after.
    """
    changes = dict(overrides or {})
    bad = set(changes) - FORK_OVERRIDES
    if bad:
        raise ConfigurationError(
            f"fork cannot override {sorted(bad)}; allowed: "
            f"{sorted(FORK_OVERRIDES)}"
        )
    config = decode_config(snapshot.config)
    if seed is not None:
        changes["seed"] = int(seed)
    if changes:
        config = dataclasses.replace(config, **changes)
    return restore(snapshot, config=config, skip_rng=seed is not None)


# -- world ----------------------------------------------------------------


def _restore_mobility(mob: Any, data: dict[str, Any]) -> None:
    if data["kind"] != type(mob).__name__:
        raise SnapshotError(
            f"snapshot mobility is {data['kind']!r} but scenario built "
            f"{type(mob).__name__!r}"
        )
    mob._time = float(data["time"])
    mob._pos = decode_array(data["pos"])
    if isinstance(mob, TraceMobility):
        return
    if isinstance(mob, WaypointEngine):
        mob._target = decode_array(data["target"])
        mob._speed = decode_array(data["speed"])
        mob._pause_left = decode_array(data["pause_left"])
        if isinstance(mob, TaxiFleet):
            mob._hotspots = decode_array(data["hotspots"])
            mob._weights = decode_array(data["weights"])
        return
    if isinstance(mob, RandomWalk):
        mob._heading = decode_array(data["heading"])
        mob._speed = decode_array(data["speed"])
        mob._leg_left = decode_array(data["leg_left"])
        return
    if isinstance(mob, RandomDirection):
        mob._heading = decode_array(data["heading"])
        mob._speed = decode_array(data["speed"])
        mob._pause_left = decode_array(data["pause_left"])
        return
    if isinstance(mob, Stationary):
        return  # _pos (restored above) is the only state
    raise SnapshotError(
        f"mobility model {type(mob).__name__} is not snapshot-capable"
    )


def _restore_world(world: Any, data: dict[str, Any]) -> None:
    # Set layout never matters for links (all behaviour-relevant iterations
    # sort first), so a plain rebuild is exact.
    world.links = {(int(i), int(j)) for i, j in data["links"]}
    world.down_nodes = {int(i) for i in data["down_nodes"]}


# -- per-node state --------------------------------------------------------


def _decode_message(md: dict[str, Any]) -> Message:
    return Message(
        msg_id=str(md["msg_id"]),
        source=int(md["source"]),
        destination=int(md["destination"]),
        size=int(md["size"]),
        created_at=float(md["created_at"]),
        ttl=float(md["ttl"]),
        initial_copies=int(md["initial_copies"]),
        copies=int(md["copies"]),
        hop_count=int(md["hop_count"]),
        spray_times=list(md["spray_times"]),
    )


def _restore_nodes(built: Any, node_states: list[dict[str, Any]]) -> None:
    nodes = built.nodes
    if len(node_states) != len(nodes):
        raise SnapshotError(
            f"snapshot has {len(node_states)} nodes, scenario has {len(nodes)}"
        )
    world = built.world
    for node, data in zip(nodes, node_states):
        if int(data["id"]) != node.id:
            raise SnapshotError(
                f"node id mismatch: snapshot {data['id']} vs built {node.id}"
            )
        buf = node.buffer
        buf._messages.clear()
        buf._pins.clear()
        buf._used = 0
        for md in data["buffer"]:
            buf.add(_decode_message(md))
        # Pins and the sending flag are re-established when in-flight
        # transfers are re-armed.
        node.sending = False
        # Neighbor maps are rebuilt silently (no link events: the contacts
        # already happened before the snapshot) in captured insertion order,
        # which breaks relay-selection ties.
        node.neighbors.clear()
        for pid in data["neighbors"]:
            node.neighbors[int(pid)] = world.nodes[int(pid)]
        router = node.router
        router.delivered_ids = set(data["delivered_ids"])
        _restore_router_state(router, data["router"])
        _restore_policy_state(router.policy, data["policy"])


def _restore_router_state(router: Any, data: dict[str, Any] | None) -> None:
    if data is None:
        return
    kind = data["kind"]
    if kind == "prophet":
        if not isinstance(router, ProphetRouter):
            raise SnapshotError(
                f"snapshot has PRoPHET state but router is {type(router).__name__}"
            )
        router._preds = {int(d): float(p) for d, p in data["preds"]}
        router._last_aged = float(data["last_aged"])
    elif kind == "snf":
        if not isinstance(router, SprayAndFocusRouter):
            raise SnapshotError(
                f"snapshot has spray-and-focus state but router is "
                f"{type(router).__name__}"
            )
        router.last_seen = {int(p): float(t) for p, t in data["last_seen"]}
    else:
        raise SnapshotError(f"unknown router state kind {kind!r}")


def _restore_policy_state(policy: Any, data: dict[str, Any] | None) -> None:
    if data is None:
        return
    kind = data["kind"]
    if kind == "sdsrp":
        if not isinstance(policy, SdsrpPolicy):
            raise SnapshotError(
                f"snapshot has SDSRP state but policy is {type(policy).__name__}"
            )
        if data["dropped"] is not None:
            store = policy.dropped
            if store is None:
                raise SnapshotError(
                    "snapshot carries a dropped-list store but the rebuilt "
                    "policy has none"
                )
            store._records = {
                int(origin): DropRecord(
                    int(origin),
                    float(record_time),
                    {str(mid): float(exp) for mid, exp in dropped.items()},
                )
                for origin, record_time, dropped in data["dropped"]
            }
            own = store._records.get(store.node_id)
            if own is None:
                raise SnapshotError(
                    f"dropped-list store for node {store.node_id} lost its "
                    "own record"
                )
            store._own = own
    elif kind == "arrival":
        if not isinstance(policy, (FifoPolicy, LifoPolicy)):
            raise SnapshotError(
                f"snapshot has FIFO/LIFO state but policy is "
                f"{type(policy).__name__}"
            )
        policy._arrival = {str(mid): int(n) for mid, n in data["arrival"]}
        policy._counter = int(data["counter"])
    elif kind == "mofo":
        if not isinstance(policy, MofoPolicy):
            raise SnapshotError(
                f"snapshot has MOFO state but policy is {type(policy).__name__}"
            )
        policy._forwards = {str(mid): int(n) for mid, n in data["forwards"]}
    elif kind == "random":
        if not isinstance(policy, RandomPolicy):
            raise SnapshotError(
                f"snapshot has random-policy state but policy is "
                f"{type(policy).__name__}"
            )
        policy._scores = {str(mid): float(s) for mid, s in data["scores"]}
    else:
        raise SnapshotError(f"unknown policy state kind {kind!r}")


# -- SDSRP shared state ----------------------------------------------------


def _restore_shared(shared: Any, data: dict[str, Any] | None) -> None:
    if (shared is None) != (data is None):
        raise SnapshotError("snapshot/scenario disagree on SDSRP shared state")
    if shared is None:
        return
    _restore_estimator(shared.estimator, data["estimator"])
    oracle_data = data["oracle"]
    if (shared.oracle is None) != (oracle_data is None):
        raise SnapshotError("snapshot/scenario disagree on infection oracle")
    if shared.oracle is not None:
        shared.oracle._state = {
            str(mid): _InfectionState(
                source=int(source),
                holders={int(h) for h in holders},
                seen={int(s) for s in seen},
                drops=int(drops),
            )
            for mid, source, holders, seen, drops in oracle_data["state"]
        }


def _restore_mean(acc: _RunningMean, data: dict[str, Any]) -> None:
    acc.total = float(data["total"])
    acc.count = int(data["count"])


def _restore_estimator(est: Any, data: dict[str, Any]) -> None:
    kind = data["kind"]
    if kind == "min":
        if not isinstance(est, MinIntermeetingEstimator):
            raise SnapshotError(
                f"snapshot estimator is 'min' but scenario built "
                f"{type(est).__name__}"
            )
        _restore_mean(est._acc, data["acc"])
        est._active = {int(i): int(n) for i, n in data["active"]}
        est._last_idle = {int(i): float(v) for i, v in data["last_idle"]}
    elif kind == "pair":
        if not isinstance(est, PairIntermeetingEstimator):
            raise SnapshotError(
                f"snapshot estimator is 'pair' but scenario built "
                f"{type(est).__name__}"
            )
        _restore_mean(est._acc, data["acc"])
        est._last_end = {
            (int(a), int(b)): float(v) for a, b, v in data["last_end"]
        }
    elif kind == "static":
        if not isinstance(est, StaticIntermeetingEstimator):
            raise SnapshotError(
                f"snapshot estimator is 'static' but scenario built "
                f"{type(est).__name__}"
            )
    else:
        raise SnapshotError(f"unknown estimator kind {kind!r}")


# -- collectors ------------------------------------------------------------


def _restore_metrics(metrics: Any, data: dict[str, Any]) -> None:
    metrics._excluded = {str(m) for m in data["excluded"]}
    metrics.created = int(data["created"])
    metrics.delivered = int(data["delivered"])
    metrics.relayed = int(data["relayed"])
    metrics.relayed_accepted = int(data["relayed_accepted"])
    metrics.aborted = int(data["aborted"])
    metrics.started = int(data["started"])
    metrics.drops_by_reason = {
        str(k): int(v) for k, v in data["drops_by_reason"].items()
    }
    metrics.faults_by_kind = {
        str(k): int(v) for k, v in data["faults_by_kind"].items()
    }
    metrics.hop_counts = [int(h) for h in data["hop_counts"]]
    metrics.latencies = [float(v) for v in data["latencies"]]
    metrics._created_at = {
        str(mid): float(v) for mid, v in data["created_at"]
    }


def _restore_contacts(contacts: Any, data: dict[str, Any]) -> None:
    contacts.contact_count = int(data["contact_count"])
    contacts._durations = [float(v) for v in data["durations"]]
    contacts._intermeetings = [float(v) for v in data["intermeetings"]]
    contacts._up_since = {
        (int(a), int(b)): float(v) for a, b, v in data["up_since"]
    }
    contacts._last_down = {
        (int(a), int(b)): float(v) for a, b, v in data["last_down"]
    }


def _restore_buffer_report(report: Any, data: dict[str, Any] | None) -> None:
    if (report is None) != (data is None):
        raise SnapshotError("snapshot/scenario disagree on the buffer report")
    if report is None:
        return
    report._times = [float(v) for v in data["times"]]
    report._mean_occupancy = [float(v) for v in data["mean"]]
    report._max_occupancy = [float(v) for v in data["max"]]


def _restore_sanitizer(sanitizer: Any, data: dict[str, Any] | None) -> None:
    if sanitizer is None or data is None:
        # Sanitizer enablement may come from the environment
        # (REPRO_SANITIZE=1), so presence is allowed to differ; its state is
        # rebuilt within one tick either way.
        return
    sanitizer.ticks_checked = int(data["ticks_checked"])
    sanitizer._ttl_seen = {
        (int(node_id), str(mid)): float(v)
        for node_id, mid, v in data["ttl_seen"]
    }
    sanitizer._copy_budget = {
        str(mid): int(n) for mid, n in data["copy_budget"]
    }
    sanitizer._committed_seqs = {int(s) for s in data["committed_seqs"]}


def _restore_timeseries(ts: Any, data: dict[str, Any] | None) -> None:
    if (ts is None) != (data is None):
        raise SnapshotError("snapshot/scenario disagree on the time series")
    if ts is None:
        return
    ts.created = int(data["created"])
    ts.delivered = int(data["delivered"])
    ts.relayed = int(data["relayed"])
    ts.bytes_relayed = int(data["bytes_relayed"])
    ts.transfers_started = int(data["transfers_started"])
    ts.transfers_aborted = int(data["transfers_aborted"])
    ts.drops_by_reason = {
        str(k): int(v) for k, v in data["drops_by_reason"].items()
    }
    ts.faults_by_kind = {
        str(k): int(v) for k, v in data["faults_by_kind"].items()
    }
    _restore_histogram(ts.latency_hist, data["latency_hist"])
    _restore_histogram(ts.transfer_duration_hist, data["duration_hist"])
    # Column cells keep their JSON-native numeric types: counter columns
    # store ints, rate columns floats, and the export must not widen them.
    ts._columns = {str(c): list(vals) for c, vals in data["columns"].items()}
    ts._node_occupancy = [list(row) for row in data["node_occupancy"]]
    last = data["last_sample_time"]
    ts._last_sample_time = None if last is None else float(last)
    ts._last_bytes = int(data["last_bytes"])


def _restore_histogram(hist: Any, data: dict[str, Any]) -> None:
    counts = [int(c) for c in data["counts"]]
    if len(counts) != len(hist.counts):
        raise SnapshotError("histogram bin count mismatch")
    hist.counts = counts
    hist.n = int(data["n"])
    hist.total = float(data["total"])


def _restore_trace(trace: Any, data: dict[str, Any] | None) -> None:
    if (trace is None) != (data is None):
        raise SnapshotError("snapshot/scenario disagree on event tracing")
    if trace is None:
        return
    trace._records = deque(
        (dict(r) for r in data["records"]), maxlen=trace.capacity
    )
    trace.events_seen = int(data["events_seen"])


def _restore_profiler(profiler: Any, data: dict[str, Any] | None) -> None:
    if profiler is None or data is None:
        # Wall-clock profiling is advisory; tolerate presence differences.
        return
    profiler.self_seconds = {
        str(k): float(v) for k, v in data["self_seconds"].items()
    }
    profiler.calls = {str(k): int(v) for k, v in data["calls"].items()}


# -- faults / transfers ----------------------------------------------------


def _restore_fault_state(injector: Any, data: dict[str, Any] | None) -> None:
    if (injector is None) != (data is None):
        raise SnapshotError("snapshot/scenario disagree on fault injection")
    if injector is None:
        return
    injector.counts = {str(k): int(v) for k, v in data["counts"].items()}
    injector.churned_nodes = tuple(int(i) for i in data["churned_nodes"])
    injector.churn_phases = {
        int(i): float(p) for i, p in data["churn_phases"]
    }
    injector._next_flap_at = float(data["next_flap_at"])
    # Older snapshots predate scripted fault events; they carry none, so a
    # zero cursor is exact for them.
    injector._scripted_transfer_consumed = int(
        data.get("scripted_transfer_consumed", 0)
    )


def _restore_transfers(built: Any, data: dict[str, Any]) -> None:
    manager = built.world.transfer_manager
    sim = built.sim
    world = built.world
    manager._active.clear()
    for td in data["active"]:
        sender = world.nodes[int(td["sender"])]
        receiver = world.nodes[int(td["receiver"])]
        # The transfer's message IS the sender's buffered object (split
        # commits mutate it in place), so look it up rather than decode it.
        message = sender.buffer.get(str(td["msg_id"]))
        eta = float(td["eta"])
        if math.isnan(eta):
            raise SnapshotError(f"transfer {td['seq']} has no valid ETA")
        transfer = Transfer(
            sender,
            receiver,
            message,
            str(td["mode"]),
            float(td["started_at"]),
            eta,
            seq=int(td["seq"]),
        )
        sender.buffer.pin(message.msg_id)
        sender.sending = True
        manager._active[sender.id] = transfer
        # Re-arm the completion directly; TransferManager.start would emit a
        # fresh transfer.started event and re-run link checks.
        transfer.event = sim.schedule_at(eta, manager._complete, transfer)
    manager._seq = int(data["seq"])
