"""Snapshot file format: versioned, checksummed, atomically written.

A snapshot is a gzip-compressed JSON document with four top-level keys:
``magic`` (format marker), ``version`` (:data:`SCHEMA_VERSION`), ``checksum``
(SHA-256 over the canonical JSON of config + state) and the ``config`` /
``state`` payloads produced by :mod:`repro.snapshot.capture`.

Design constraints:

* **No pickle.**  Simulator state is serialized to plain JSON-safe
  structures (reprolint REP008 bans ``pickle``/``marshal`` of simulator
  state everywhere else).  Floats round-trip exactly through Python's JSON
  encoder (shortest-repr), and non-finite values (``NaN`` for exhausted
  recurring chains, ``-Infinity`` for unset record times) use the JSON
  extension literals, which :func:`json.loads` accepts by default.
* **Atomic writes.**  Files are written to a temporary sibling and
  ``os.replace``-d into place, so a crash mid-write never leaves a torn
  snapshot where a resumable one used to be.
* **Integrity.**  :func:`read_snapshot` refuses unknown schema versions and
  payloads whose checksum does not match, raising
  :class:`~repro.errors.SnapshotError`.
"""

from __future__ import annotations

import base64
import gzip
import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import SnapshotError

__all__ = [
    "SCHEMA_VERSION",
    "Snapshot",
    "canonical_json",
    "decode_array",
    "encode_array",
    "make_snapshot",
    "read_snapshot",
    "state_checksum",
    "write_snapshot",
]

#: Bump on any incompatible change to the captured state layout.  Readers
#: support exactly one version: restoring across schema versions is refused
#: (see docs/checkpointing.md for the compatibility policy).
SCHEMA_VERSION = 1

_MAGIC = "repro.snapshot"


@dataclass(frozen=True)
class Snapshot:
    """One captured simulation state (see :func:`repro.snapshot.save`)."""

    version: int
    #: ``dataclasses.asdict`` of the scenario config the state belongs to.
    config: dict[str, Any]
    #: The full simulator state payload (JSON-safe, no live references).
    state: dict[str, Any]
    #: SHA-256 hex digest over the canonical JSON of ``config`` + ``state``.
    checksum: str


# -- numpy arrays ----------------------------------------------------------


def encode_array(arr: np.ndarray) -> dict[str, Any]:
    """Encode an ndarray as a JSON-safe dict (dtype + shape + base64 bytes).

    Byte-exact: the raw little-endian buffer is preserved, so positions and
    mobility state restore to the identical floats.
    """
    a = np.ascontiguousarray(arr)
    return {
        "__ndarray__": True,
        "dtype": str(a.dtype),
        "shape": list(a.shape),
        "data": base64.b64encode(a.tobytes()).decode("ascii"),
    }


def decode_array(obj: dict[str, Any]) -> np.ndarray:
    """Inverse of :func:`encode_array`; returns a fresh writable array."""
    try:
        raw = base64.b64decode(obj["data"])
        return (
            np.frombuffer(raw, dtype=obj["dtype"])
            .reshape(obj["shape"])
            .copy()
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotError(f"malformed array payload: {exc}") from exc


# -- checksums -------------------------------------------------------------


def canonical_json(payload: Any) -> str:
    """Deterministic JSON text (sorted keys, no whitespace) for hashing
    and byte-level payload comparison."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def state_checksum(config: dict[str, Any], state: dict[str, Any]) -> str:
    """SHA-256 hex digest binding a state payload to its config."""
    blob = canonical_json({"config": config, "state": state})
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def make_snapshot(config: dict[str, Any], state: dict[str, Any]) -> Snapshot:
    """Wrap a captured payload with the current version and its checksum."""
    return Snapshot(
        version=SCHEMA_VERSION,
        config=config,
        state=state,
        checksum=state_checksum(config, state),
    )


# -- file codec ------------------------------------------------------------


def write_snapshot(snapshot: Snapshot, path: str | Path) -> Path:
    """Write *snapshot* to *path* (gzip JSON), atomically.

    Parent directories are created as needed.  The document is staged in a
    temporary sibling file, fsync-ed, then renamed over the target, so
    readers only ever observe complete snapshots.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "magic": _MAGIC,
        "version": snapshot.version,
        "checksum": snapshot.checksum,
        "config": snapshot.config,
        "state": snapshot.state,
    }
    blob = gzip.compress(json.dumps(payload).encode("utf-8"))
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("wb") as fh:
        fh.write(blob)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def read_snapshot(path: str | Path) -> Snapshot:
    """Read and validate a snapshot written by :func:`write_snapshot`.

    Raises :class:`~repro.errors.SnapshotError` on a missing/truncated
    file, a non-snapshot document, an unsupported schema version, or a
    checksum mismatch.
    """
    path = Path(path)
    try:
        payload = json.loads(gzip.decompress(path.read_bytes()).decode("utf-8"))
    except FileNotFoundError:
        raise SnapshotError(f"snapshot file not found: {path}") from None
    except (OSError, EOFError, ValueError) as exc:
        raise SnapshotError(f"unreadable snapshot {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("magic") != _MAGIC:
        raise SnapshotError(f"{path} is not a repro snapshot file")
    version = payload.get("version")
    if version != SCHEMA_VERSION:
        raise SnapshotError(
            f"{path}: unsupported snapshot schema version {version!r} "
            f"(this build reads version {SCHEMA_VERSION})"
        )
    config = payload.get("config")
    state = payload.get("state")
    checksum = payload.get("checksum")
    if not isinstance(config, dict) or not isinstance(state, dict):
        raise SnapshotError(f"{path}: snapshot missing config/state payloads")
    expected = state_checksum(config, state)
    if checksum != expected:
        raise SnapshotError(
            f"{path}: checksum mismatch (file {checksum!r}, payload "
            f"{expected!r}) — snapshot is corrupt"
        )
    return Snapshot(
        version=int(version), config=config, state=state, checksum=checksum
    )
