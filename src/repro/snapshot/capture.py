"""Capture a built simulation's full state as a JSON-safe payload.

:func:`save` walks every stateful component of a
:class:`~repro.experiments.runner.BuiltSimulation` — clock, RNG streams,
mobility arrays, link topology, buffers, routing state, policy state,
collectors, fault-plan cursors and in-flight transfers — and returns a
:class:`~repro.snapshot.codec.Snapshot` that
:func:`repro.snapshot.restore.restore` can turn back into a byte-identical
continuation of the run.

Ordering rules (the part that makes restores *deterministic*, not merely
plausible):

* Dicts whose iteration order can influence behaviour (buffers, PRoPHET
  predictability tables, per-node neighbor maps, gossip stores, …) are
  captured as **insertion-ordered pair lists**, never sorted, so the
  restored dict iterates exactly like the original.
* Sets are captured sorted — only membership matters for them; every
  behaviour-relevant iteration over a set in the simulator is sorted at the
  use site.
* No live references leak into the payload: arrays are copied into base64
  blobs, records are copied dict-by-dict, and callbacks/closures are never
  serialized (they are re-created by ``build_scenario`` on restore).
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.core.dropped_list import DroppedListStore
from repro.core.intermeeting import (
    MinIntermeetingEstimator,
    PairIntermeetingEstimator,
    StaticIntermeetingEstimator,
    _RunningMean,
)
from repro.core.oracle import GlobalInfectionOracle
from repro.core.sdsrp import SdsrpPolicy, SdsrpShared
from repro.errors import SnapshotError
from repro.mobility.base import MobilityModel, WaypointEngine
from repro.mobility.random_direction import RandomDirection
from repro.mobility.random_walk import RandomWalk
from repro.mobility.stationary import Stationary
from repro.mobility.taxi import TaxiFleet
from repro.mobility.trace import TraceMobility
from repro.net.message import Message
from repro.policies.fifo import FifoPolicy
from repro.policies.lifo import LifoPolicy
from repro.policies.mofo import MofoPolicy
from repro.policies.random_drop import RandomPolicy
from repro.routing.prophet import ProphetRouter
from repro.routing.spray_and_focus import SprayAndFocusRouter
from repro.snapshot.codec import Snapshot, encode_array, make_snapshot
from repro.world.node import Node

__all__ = ["encode_config", "save"]


def encode_config(config: Any) -> dict[str, Any]:
    """``ScenarioConfig`` -> JSON-safe dict (tuples become lists on the
    wire; :func:`repro.snapshot.restore.decode_config` rebuilds them)."""
    return dataclasses.asdict(config)


def save(built: Any) -> Snapshot:
    """Capture *built* (a ``BuiltSimulation``) into a :class:`Snapshot`.

    Safe to call between events (e.g. from a
    :class:`~repro.snapshot.snapshotter.PeriodicSnapshotter` callback) or
    after ``sim.run(until=...)`` returned; every pending event is either a
    recurring chain, a generator/fault cursor or an in-flight transfer, and
    all of those re-arm from the captured state.
    """
    if built.rng is None:
        raise SnapshotError(
            "cannot snapshot a simulation built without an RngFactory "
            "(BuiltSimulation.rng is None)"
        )
    sim = built.sim
    state: dict[str, Any] = {
        "t": sim.now,
        "events_processed": sim.events_processed,
        "rng": built.rng.state_dict(),
        "recurring": {
            name: rec.next_time for name, rec in sim._recurring.items()
        },
        "mobility": _capture_mobility(built.world.mobility),
        "world": _capture_world(built.world),
        "generator": {
            "created": built.generator.created,
            "next_at": built.generator._next_at,
        },
        "nodes": [_capture_node(node) for node in built.nodes],
        "shared": _capture_shared(built.shared),
        "metrics": _capture_metrics(built.metrics),
        "contacts": _capture_contacts(built.contacts),
        "buffer_report": _capture_buffer_report(built.buffer_report),
        "sanitizer": _capture_sanitizer(built.sanitizer),
        "timeseries": _capture_timeseries(built.timeseries),
        "trace": _capture_trace(built.trace),
        "profiler": _capture_profiler(built.profiler),
        "faults": _capture_faults(built.fault_injector),
        "transfers": _capture_transfers(built),
        "snapshotter": (
            None
            if getattr(built, "snapshotter", None) is None
            else {"next_at": built.snapshotter._next_at}
        ),
    }
    return make_snapshot(encode_config(built.config), state)


# -- world ----------------------------------------------------------------


def _capture_mobility(mob: MobilityModel) -> dict[str, Any]:
    data: dict[str, Any] = {"kind": type(mob).__name__, "time": mob._time}
    if isinstance(mob, TraceMobility):
        # The trace samples themselves are immutable inputs; only the
        # interpolation cursor is state.
        data["pos"] = encode_array(mob._pos)
        return data
    if isinstance(mob, WaypointEngine):  # RandomWaypoint and TaxiFleet
        data["pos"] = encode_array(mob._pos)
        data["target"] = encode_array(mob._target)
        data["speed"] = encode_array(mob._speed)
        data["pause_left"] = encode_array(mob._pause_left)
        if isinstance(mob, TaxiFleet):
            # Hotspots/weights are drawn from the mobility stream during
            # _setup; the restored stream is past that draw, so they must
            # be carried explicitly.
            data["hotspots"] = encode_array(mob._hotspots)
            data["weights"] = encode_array(mob._weights)
        return data
    if isinstance(mob, RandomWalk):
        data["pos"] = encode_array(mob._pos)
        data["heading"] = encode_array(mob._heading)
        data["speed"] = encode_array(mob._speed)
        data["leg_left"] = encode_array(mob._leg_left)
        return data
    if isinstance(mob, RandomDirection):
        data["pos"] = encode_array(mob._pos)
        data["heading"] = encode_array(mob._heading)
        data["speed"] = encode_array(mob._speed)
        data["pause_left"] = encode_array(mob._pause_left)
        return data
    if isinstance(mob, Stationary):
        # Positions may have been drawn from the mobility stream at _setup;
        # the restored stream is past that draw, so carry them explicitly.
        data["pos"] = encode_array(mob._pos)
        return data
    raise SnapshotError(
        f"mobility model {type(mob).__name__} is not snapshot-capable"
    )


def _capture_world(world: Any) -> dict[str, Any]:
    return {
        "links": [[i, j] for i, j in sorted(world.links)],
        "down_nodes": sorted(world.down_nodes),
    }


# -- per-node state --------------------------------------------------------


def _capture_message(m: Message) -> dict[str, Any]:
    return {
        "msg_id": m.msg_id,
        "source": m.source,
        "destination": m.destination,
        "size": m.size,
        "created_at": m.created_at,
        "ttl": m.ttl,
        "initial_copies": m.initial_copies,
        "copies": m.copies,
        "hop_count": m.hop_count,
        "spray_times": list(m.spray_times),
    }


def _capture_node(node: Node) -> dict[str, Any]:
    router = node.router
    return {
        "id": node.id,
        # Buffer contents in insertion order; pins are NOT captured — they
        # are re-established when in-flight transfers are re-armed.
        "buffer": [_capture_message(m) for m in node.buffer.messages()],
        # Neighbor-map *insertion order* breaks relay-selection ties, so it
        # is state, not a derived view of the link set.
        "neighbors": list(node.neighbors.keys()),
        "delivered_ids": sorted(router.delivered_ids),
        "router": _capture_router_state(router),
        "policy": _capture_policy_state(router.policy),
    }


def _capture_router_state(router: Any) -> dict[str, Any] | None:
    if isinstance(router, ProphetRouter):
        return {
            "kind": "prophet",
            "preds": [[dest, p] for dest, p in router._preds.items()],
            "last_aged": router._last_aged,
        }
    if isinstance(router, SprayAndFocusRouter):
        return {
            "kind": "snf",
            "last_seen": [[peer, t] for peer, t in router.last_seen.items()],
        }
    return None


def _capture_policy_state(policy: Any) -> dict[str, Any] | None:
    # SdsrpPolicy first: GbsdPolicy and KnapsackSdsrpPolicy subclass it and
    # add no mutable state of their own.
    if isinstance(policy, SdsrpPolicy):
        store = policy.dropped
        return {
            "kind": "sdsrp",
            "dropped": None if store is None else _capture_dropped(store),
        }
    if isinstance(policy, (FifoPolicy, LifoPolicy)):
        return {
            "kind": "arrival",
            "arrival": [[mid, n] for mid, n in policy._arrival.items()],
            "counter": policy._counter,
        }
    if isinstance(policy, MofoPolicy):
        return {
            "kind": "mofo",
            "forwards": [[mid, n] for mid, n in policy._forwards.items()],
        }
    if isinstance(policy, RandomPolicy):
        # The policy's generator is a named RngFactory stream; its state
        # travels with the factory.  Only the sticky scores are local.
        return {
            "kind": "random",
            "scores": [[mid, s] for mid, s in policy._scores.items()],
        }
    return None


def _capture_dropped(store: DroppedListStore) -> list[list[Any]]:
    return [
        [origin, rec.record_time, dict(rec.dropped)]
        for origin, rec in store._records.items()
    ]


# -- SDSRP shared state ----------------------------------------------------


def _capture_shared(shared: SdsrpShared | None) -> dict[str, Any] | None:
    if shared is None:
        return None
    return {
        "estimator": _capture_estimator(shared.estimator),
        "oracle": _capture_oracle(shared.oracle),
    }


def _capture_mean(acc: _RunningMean) -> dict[str, Any]:
    return {"total": acc.total, "count": acc.count}


def _capture_estimator(est: Any) -> dict[str, Any]:
    if isinstance(est, MinIntermeetingEstimator):
        return {
            "kind": "min",
            "acc": _capture_mean(est._acc),
            "active": [[i, n] for i, n in est._active.items()],
            "last_idle": [[i, t] for i, t in est._last_idle.items()],
        }
    if isinstance(est, PairIntermeetingEstimator):
        return {
            "kind": "pair",
            "acc": _capture_mean(est._acc),
            "last_end": [[a, b, t] for (a, b), t in est._last_end.items()],
        }
    if isinstance(est, StaticIntermeetingEstimator):
        return {"kind": "static"}
    raise SnapshotError(
        f"estimator {type(est).__name__} is not snapshot-capable"
    )


def _capture_oracle(oracle: GlobalInfectionOracle | None) -> dict | None:
    if oracle is None:
        return None
    return {
        "state": [
            [mid, st.source, sorted(st.holders), sorted(st.seen), st.drops]
            for mid, st in oracle._state.items()
        ]
    }


# -- collectors ------------------------------------------------------------


def _capture_metrics(metrics: Any) -> dict[str, Any]:
    return {
        "excluded": sorted(metrics._excluded),
        "created": metrics.created,
        "delivered": metrics.delivered,
        "relayed": metrics.relayed,
        "relayed_accepted": metrics.relayed_accepted,
        "aborted": metrics.aborted,
        "started": metrics.started,
        "drops_by_reason": dict(metrics.drops_by_reason),
        "faults_by_kind": dict(metrics.faults_by_kind),
        "hop_counts": list(metrics.hop_counts),
        "latencies": list(metrics.latencies),
        "created_at": [[mid, t] for mid, t in metrics._created_at.items()],
    }


def _capture_contacts(contacts: Any) -> dict[str, Any]:
    return {
        "contact_count": contacts.contact_count,
        "durations": list(contacts._durations),
        "intermeetings": list(contacts._intermeetings),
        "up_since": [[a, b, t] for (a, b), t in contacts._up_since.items()],
        "last_down": [[a, b, t] for (a, b), t in contacts._last_down.items()],
    }


def _capture_buffer_report(report: Any) -> dict[str, Any] | None:
    if report is None:
        return None
    return {
        "times": list(report._times),
        "mean": list(report._mean_occupancy),
        "max": list(report._max_occupancy),
    }


def _capture_sanitizer(sanitizer: Any) -> dict[str, Any] | None:
    if sanitizer is None:
        return None
    return {
        "ticks_checked": sanitizer.ticks_checked,
        "ttl_seen": [
            [node_id, mid, v]
            for (node_id, mid), v in sanitizer._ttl_seen.items()
        ],
        "copy_budget": [
            [mid, n] for mid, n in sanitizer._copy_budget.items()
        ],
        "committed_seqs": sorted(sanitizer._committed_seqs),
    }


def _capture_histogram(hist: Any) -> dict[str, Any]:
    return {"counts": list(hist.counts), "n": hist.n, "total": hist.total}


def _capture_timeseries(ts: Any) -> dict[str, Any] | None:
    if ts is None:
        return None
    return {
        "created": ts.created,
        "delivered": ts.delivered,
        "relayed": ts.relayed,
        "bytes_relayed": ts.bytes_relayed,
        "transfers_started": ts.transfers_started,
        "transfers_aborted": ts.transfers_aborted,
        "drops_by_reason": dict(ts.drops_by_reason),
        "faults_by_kind": dict(ts.faults_by_kind),
        "latency_hist": _capture_histogram(ts.latency_hist),
        "duration_hist": _capture_histogram(ts.transfer_duration_hist),
        "columns": {c: list(v) for c, v in ts._columns.items()},
        "node_occupancy": [list(row) for row in ts._node_occupancy],
        "last_sample_time": ts._last_sample_time,
        "last_bytes": ts._last_bytes,
    }


def _capture_trace(trace: Any) -> dict[str, Any] | None:
    if trace is None:
        return None
    return {
        "records": [dict(r) for r in trace._records],
        "events_seen": trace.events_seen,
    }


def _capture_profiler(profiler: Any) -> dict[str, Any] | None:
    if profiler is None:
        return None
    # Wall-clock numbers; captured for continuity of reporting, excluded
    # from determinism comparisons (like RunSummary.wall_seconds).
    return {
        "self_seconds": dict(profiler.self_seconds),
        "calls": dict(profiler.calls),
    }


# -- faults / transfers ----------------------------------------------------


def _capture_faults(injector: Any) -> dict[str, Any] | None:
    if injector is None:
        return None
    return {
        "counts": dict(injector.counts),
        "churned_nodes": list(injector.churned_nodes),
        "churn_phases": [
            [node_id, phase]
            for node_id, phase in injector.churn_phases.items()
        ],
        "next_flap_at": injector._next_flap_at,
        "scripted_transfer_consumed": injector._scripted_transfer_consumed,
    }


def _capture_transfers(built: Any) -> dict[str, Any]:
    manager = built.world.transfer_manager
    active = sorted(manager._active.values(), key=lambda tr: tr.seq)
    return {
        "seq": manager._seq,
        "active": [
            {
                "sender": tr.sender.id,
                "receiver": tr.receiver.id,
                "msg_id": tr.message.msg_id,
                "mode": tr.mode,
                "started_at": tr.started_at,
                "eta": tr.eta,
                "seq": tr.seq,
            }
            for tr in active
        ],
    }
