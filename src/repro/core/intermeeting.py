"""Intermeeting-time estimation (paper Definitions 1-2 and Eq. 3).

*Intermeeting time* I is the gap between the end of one contact and the
start of the next contact of the same node pair (Def. 1).  Under the
mobility classes of [22] it is approximately exponential with rate
λ = 1/E(I); the *minimum* intermeeting time of a node against all N-1
others is then exponential with λ_min = (N-1)λ (Eq. 3), giving the spray
cadence E(I_min) = E(I)/(N-1) used by Eqs. 6 and 15.

Estimators (all implement :class:`IntermeetingEstimator` and the uniform
:meth:`observe_link_up` / :meth:`observe_link_down` feeding interface):

* :class:`PairIntermeetingEstimator` — samples Def. 1 directly (per-pair
  gaps).  Statistically clean but *censored* in short runs: a pair rarely
  meets twice within the paper's 18000 s horizon, so samples are few and
  biased low.
* :class:`MinIntermeetingEstimator` — samples Def. 2 (per-node gap between
  consecutive contacts with *anyone*) and scales by (N-1) via Eq. 3.  Every
  contact yields a sample, so this is what deployed SDSRP nodes would use;
  it is the experiment default.
* :class:`StaticIntermeetingEstimator` — a fixed E(I) for oracle ablations
  and unit tests.

Online estimators blend a prior mean with the data (pseudo-count prior)
until enough samples arrive, avoiding wild early λ estimates.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import ConfigurationError

PairKey = tuple[int, int]


def pair_key(a: int, b: int) -> PairKey:
    """Canonical unordered pair key."""
    return (a, b) if a <= b else (b, a)


class IntermeetingEstimator(ABC):
    """E(I) provider (Table I: E(I), λ, E(I_min), λ_min)."""

    @abstractmethod
    def mean_intermeeting(self) -> float:
        """Current estimate of E(I) in seconds (always positive)."""

    def rate(self) -> float:
        """λ = 1/E(I)."""
        return 1.0 / self.mean_intermeeting()

    def mean_min_intermeeting(self, n_nodes: int) -> float:
        """E(I_min) = E(I)/(N-1) (Eq. 3)."""
        if n_nodes < 2:
            raise ConfigurationError(f"need at least 2 nodes: {n_nodes}")
        return self.mean_intermeeting() / (n_nodes - 1)

    def min_rate(self, n_nodes: int) -> float:
        """λ_min = (N-1)λ (Eq. 3)."""
        return 1.0 / self.mean_min_intermeeting(n_nodes)

    # -- feeding (no-op by default; online estimators override) -------------

    def observe_link_up(self, self_id: int, peer_id: int, now: float) -> None:
        """Called by each endpoint's policy when a contact starts."""

    def observe_link_down(self, self_id: int, peer_id: int, now: float) -> None:
        """Called by each endpoint's policy when a contact ends."""


class StaticIntermeetingEstimator(IntermeetingEstimator):
    """Fixed E(I) — oracle / test double."""

    def __init__(self, mean: float) -> None:
        if mean <= 0:
            raise ConfigurationError(f"mean intermeeting must be positive: {mean}")
        self._mean = float(mean)

    def mean_intermeeting(self) -> float:
        return self._mean


class _RunningMean:
    """Sum/count accumulator with a pseudo-count prior."""

    def __init__(self, prior_mean: float, prior_weight: int) -> None:
        if prior_mean <= 0:
            raise ConfigurationError(f"prior_mean must be positive: {prior_mean}")
        if prior_weight < 1:
            raise ConfigurationError(f"prior_weight must be >= 1: {prior_weight}")
        self.prior_mean = float(prior_mean)
        self.prior_weight = int(prior_weight)
        self.total = 0.0
        self.count = 0

    def add(self, value: float) -> None:
        self.total += value
        self.count += 1

    def mean(self) -> float:
        return (self.total + self.prior_weight * self.prior_mean) / (
            self.count + self.prior_weight
        )


class PairIntermeetingEstimator(IntermeetingEstimator):
    """Def. 1 sampling: gaps between consecutive contacts of the same pair.

    Feeding is idempotent per contact event, so it is safe for both
    endpoints of a link (and hence a fleet-shared instance) to report: the
    first ``observe_link_up`` consumes the pair's armed end-time, the
    duplicate finds nothing.
    """

    def __init__(self, prior_mean: float, min_samples: int = 20) -> None:
        self._acc = _RunningMean(prior_mean, min_samples)
        self._last_end: dict[PairKey, float] = {}

    def observe_link_up(self, self_id: int, peer_id: int, now: float) -> None:
        last_end = self._last_end.pop(pair_key(self_id, peer_id), None)
        if last_end is not None and now > last_end:
            self._acc.add(now - last_end)

    def observe_link_down(self, self_id: int, peer_id: int, now: float) -> None:
        self._last_end[pair_key(self_id, peer_id)] = now

    @property
    def sample_count(self) -> int:
        return self._acc.count

    def mean_intermeeting(self) -> float:
        return self._acc.mean()


class MinIntermeetingEstimator(IntermeetingEstimator):
    """Def. 2 sampling: per-node gaps between contacts with anyone.

    E(I) is recovered from the sampled E(I_min) via Eq. 3:
    E(I) = (N-1) E(I_min).  ``prior_mean`` is the prior on the *pairwise*
    E(I) for interface consistency; it is internally divided by N-1.
    A node's gap only starts once all its concurrent contacts have ended.
    """

    def __init__(self, prior_mean: float, n_nodes: int, min_samples: int = 20) -> None:
        if n_nodes < 2:
            raise ConfigurationError(f"need at least 2 nodes: {n_nodes}")
        self.n_nodes = int(n_nodes)
        self._acc = _RunningMean(prior_mean / (n_nodes - 1), min_samples)
        self._active: dict[int, int] = {}
        self._last_idle: dict[int, float] = {}

    def observe_link_up(self, self_id: int, peer_id: int, now: float) -> None:
        active = self._active.get(self_id, 0)
        if active == 0:
            idle_since = self._last_idle.pop(self_id, None)
            if idle_since is not None and now > idle_since:
                self._acc.add(now - idle_since)
        self._active[self_id] = active + 1

    def observe_link_down(self, self_id: int, peer_id: int, now: float) -> None:
        active = self._active.get(self_id, 0)
        if active <= 1:
            self._active.pop(self_id, None)
            self._last_idle[self_id] = now
        else:
            self._active[self_id] = active - 1

    @property
    def sample_count(self) -> int:
        return self._acc.count

    def mean_min_intermeeting(self, n_nodes: int | None = None) -> float:
        """Directly sampled E(I_min) (the n_nodes argument is ignored)."""
        return self._acc.mean()

    def mean_intermeeting(self) -> float:
        return self._acc.mean() * (self.n_nodes - 1)


#: Backwards-compatible alias: the original online estimator was pair-based.
OnlineIntermeetingEstimator = PairIntermeetingEstimator
