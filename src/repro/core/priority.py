r"""SDSRP delivery-probability and priority equations (paper Sec. III-B).

Notation (Table I of the paper):

* ``N`` — number of nodes; ``lam`` — intermeeting-rate parameter λ = 1/E(I).
* ``C_i`` — current copy tokens of message i; ``R_i`` — remaining TTL.
* ``m_i`` — nodes (excl. source) that have seen message i.
* ``n_i`` — nodes currently holding a copy.

All functions broadcast over NumPy arrays, so the policy can rank a whole
buffer in one call and the Fig. 4 benchmark can sweep curves vectorized.

The recurring sub-expression is the exponent coefficient

.. math::

    A_i = (\log_2 C_i + 1) R_i
          - \frac{1}{2(N-1)\lambda} \log_2 C_i (\log_2 C_i + 1)

with which Eq. 6 reads :math:`P(R_i) = 1 - e^{-\lambda n_i A_i}` and the
priority (Eq. 10) is :math:`U_i = (1 - \frac{m_i}{N-1})\,\lambda A_i\,
e^{-\lambda n_i A_i}`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

#: The P(R_i) value that maximizes priority (paper Fig. 4): messages whose
#: expected encounter time with the destination equals their remaining
#: spray-adjusted TTL budget (Eq. 12) sit at the peak 1 - 1/e.
PEAK_P_R = 1.0 - 1.0 / np.e

#: Exponent clamps.  The negative side sits just above float64 underflow so
#: deep-saturation points (λnA large) still rank by magnitude; the positive
#: side (which only arises for *negative* coefficients, i.e. effectively
#: expired messages whose priority is already negative) is clamped low
#: enough that the ``coeff * exp(...)`` product cannot overflow — ordering
#: among such messages stays monotone in the coefficient either way.
_EXP_MIN = -700.0
_EXP_MAX = 50.0


def _check_n(n_nodes: int) -> None:
    if n_nodes < 2:
        raise ConfigurationError(f"need at least 2 nodes, got {n_nodes}")


def exponent_coefficient(copies, remaining_ttl, lam: float, n_nodes: int):
    r"""The :math:`A_i` term shared by Eqs. 6-10.

    ``copies`` must be >= 1; ``remaining_ttl`` may be any float (negative
    once expired — the resulting negative coefficient correctly ranks the
    message for immediate dropping).
    """
    _check_n(n_nodes)
    if lam <= 0:
        raise ConfigurationError(f"lambda must be positive: {lam}")
    copies = np.asarray(copies, dtype=float)
    if np.any(copies < 1):
        raise ConfigurationError("copies must be >= 1")
    remaining_ttl = np.asarray(remaining_ttl, dtype=float)
    log_c = np.log2(copies)
    spray_penalty = log_c * (log_c + 1.0) / (2.0 * (n_nodes - 1) * lam)
    return (log_c + 1.0) * remaining_ttl - spray_penalty


def p_delivered(m_seen, n_nodes: int):
    r"""Eq. 5 — :math:`P(T_i) = m_i / (N-1)`, clipped into [0, 1].

    The clip guards the *estimated* ``m_i`` (Eq. 15 over-counts late in a
    message's life); the paper implicitly assumes m_i <= N-1.
    """
    _check_n(n_nodes)
    return np.clip(np.asarray(m_seen, dtype=float) / (n_nodes - 1), 0.0, 1.0)


def p_remaining(copies, remaining_ttl, n_holders, lam: float, n_nodes: int):
    r"""Eq. 6 — probability an undelivered message reaches its destination
    within the remaining TTL, :math:`1 - e^{-\lambda n_i A_i}`."""
    coeff = exponent_coefficient(copies, remaining_ttl, lam, n_nodes)
    n_holders = np.asarray(n_holders, dtype=float)
    exponent = np.clip(-lam * n_holders * coeff, _EXP_MIN, _EXP_MAX)
    return 1.0 - np.exp(exponent)


def delivery_probability(copies, remaining_ttl, m_seen, n_holders,
                         lam: float, n_nodes: int):
    r"""Eq. 7 — :math:`P_i = P(T_i) + (1 - P(T_i)) P(R_i)`."""
    pt = p_delivered(m_seen, n_nodes)
    pr = p_remaining(copies, remaining_ttl, n_holders, lam, n_nodes)
    return pt + (1.0 - pt) * pr


def priority_closed_form(copies, remaining_ttl, m_seen, n_holders,
                         lam: float, n_nodes: int):
    r"""Eq. 10 — the SDSRP priority

    .. math::

        U_i = \left(1 - \frac{m_i}{N-1}\right) \lambda A_i\,
              e^{-\lambda n_i A_i}

    i.e. :math:`\partial P / \partial n_i`: the marginal delivery-ratio
    value of one more (or one fewer) copy of message i in the network.
    """
    coeff = exponent_coefficient(copies, remaining_ttl, lam, n_nodes)
    pt = p_delivered(m_seen, n_nodes)
    n_holders = np.asarray(n_holders, dtype=float)
    exponent = np.clip(-lam * n_holders * coeff, _EXP_MIN, _EXP_MAX)
    return (1.0 - pt) * lam * coeff * np.exp(exponent)


def priority_from_probabilities(p_t, p_r, n_holders):
    r"""Eq. 11 — the same priority expressed via probabilities:

    .. math::

        U_i = \frac{(1 - P(T_i))\,(P(R_i) - 1)\,\ln(1 - P(R_i))}{n_i}

    Monotone decreasing in :math:`P(T_i)`; in :math:`P(R_i)` it rises to a
    peak at :data:`PEAK_P_R` and falls after (Fig. 4).  At ``p_r == 1`` the
    limit is 0 (the message is certain to be delivered; an extra copy is
    worthless), handled explicitly.
    """
    p_t = np.asarray(p_t, dtype=float)
    p_r = np.asarray(p_r, dtype=float)
    n_holders = np.asarray(n_holders, dtype=float)
    one_minus = 1.0 - p_r
    with np.errstate(divide="ignore", invalid="ignore"):
        value = (1.0 - p_t) * (-one_minus) * np.log(one_minus) / n_holders
    # lim_{p->1} (p-1) ln(1-p) = 0
    return np.where(one_minus <= 0.0, 0.0, value)


def priority_taylor(p_t, p_r, n_holders, terms: int = 8):
    r"""Eq. 13 — Taylor-truncated priority

    .. math::

        U_i \approx \frac{(1-P(T_i))(1-P(R_i))
                     \sum_{k=1}^{K} P(R_i)^k / k}{n_i}

    converging to Eq. 11 as ``terms`` grows (paper Fig. 4 shows the
    truncations approaching the "idealization"); low term counts save
    computation at a controlled accuracy loss.
    """
    if terms < 1:
        raise ConfigurationError(f"terms must be >= 1: {terms}")
    p_t = np.asarray(p_t, dtype=float)
    p_r = np.asarray(p_r, dtype=float)
    n_holders = np.asarray(n_holders, dtype=float)
    # Horner-style accumulation of sum_{k=1}^{K} x^k / k.
    acc = np.zeros(np.broadcast(p_t, p_r, n_holders).shape)
    power = np.ones_like(acc)
    for k in range(1, terms + 1):
        power = power * p_r
        acc = acc + power / k
    return (1.0 - p_t) * (1.0 - p_r) * acc / n_holders
