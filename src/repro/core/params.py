"""SDSRP configuration knobs.

The defaults reproduce the paper's strategy; the alternatives are the
ablation axes called out in DESIGN.md §3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: How the policy obtains m_i / n_i / d_i.
ESTIMATOR_DISTRIBUTED = "distributed"  # paper: spray tree + dropped-list gossip
ESTIMATOR_ORACLE = "oracle"  # ablation: exact global knowledge

#: Which priority expression to evaluate.
FORM_CLOSED = "closed"  # Eq. 10
FORM_TAYLOR = "taylor"  # Eq. 13 truncation

#: Dropped-list rejection rule ("nodes reject receiving the message already
#: in their dropped lists").
REJECT_OWN = "own"  # reject messages this node itself dropped (default)
REJECT_ANY = "any"  # reject messages any known record lists (aggressive)
REJECT_OFF = "off"  # no rejection (ablation)

#: How λ is sampled online (see repro.core.intermeeting).
INTERMEETING_MIN = "min"  # Def. 2: node-level gaps, scaled by Eq. 3 (default)
INTERMEETING_PAIR = "pair"  # Def. 1: per-pair gaps (censored in short runs)


@dataclass(frozen=True)
class SdsrpParams:
    """Tunable parameters of :class:`repro.core.sdsrp.SdsrpPolicy`."""

    #: m/n/d source: ESTIMATOR_DISTRIBUTED or ESTIMATOR_ORACLE.
    estimator: str = ESTIMATOR_DISTRIBUTED
    #: Priority expression: FORM_CLOSED or FORM_TAYLOR.
    priority_form: str = FORM_CLOSED
    #: Taylor truncation length when priority_form == FORM_TAYLOR.
    taylor_terms: int = 8
    #: Online λ sampling: INTERMEETING_MIN or INTERMEETING_PAIR.
    intermeeting_mode: str = INTERMEETING_MIN
    #: Prior pairwise E(I) (seconds) used before the estimator has samples.
    prior_intermeeting: float = 20000.0
    #: Pseudo-count weight of the prior.
    prior_weight: int = 20
    #: Dropped-list rejection rule: REJECT_OWN / REJECT_ANY / REJECT_OFF.
    reject_rule: str = REJECT_OWN
    #: Record overflow drops in the gossiped dropped list.
    gossip_drops: bool = True
    #: Eq. 15 reference time: False = latest spray (the paper's formula),
    #: True = current time (aggressive branch growth; ablation).
    extrapolate_spray_tree: bool = False
    #: Prune dropped-list entries for expired messages at each contact.
    prune_dropped_lists: bool = True

    def __post_init__(self) -> None:
        if self.estimator not in (ESTIMATOR_DISTRIBUTED, ESTIMATOR_ORACLE):
            raise ConfigurationError(f"unknown estimator {self.estimator!r}")
        if self.priority_form not in (FORM_CLOSED, FORM_TAYLOR):
            raise ConfigurationError(f"unknown priority_form {self.priority_form!r}")
        if self.taylor_terms < 1:
            raise ConfigurationError(f"taylor_terms must be >= 1: {self.taylor_terms}")
        if self.prior_intermeeting <= 0:
            raise ConfigurationError(
                f"prior_intermeeting must be positive: {self.prior_intermeeting}"
            )
        if self.prior_weight < 1:
            raise ConfigurationError(f"prior_weight must be >= 1: {self.prior_weight}")
        if self.reject_rule not in (REJECT_OWN, REJECT_ANY, REJECT_OFF):
            raise ConfigurationError(f"unknown reject_rule {self.reject_rule!r}")
        if self.intermeeting_mode not in (INTERMEETING_MIN, INTERMEETING_PAIR):
            raise ConfigurationError(
                f"unknown intermeeting_mode {self.intermeeting_mode!r}"
            )
