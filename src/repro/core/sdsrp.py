"""The SDSRP buffer policy (paper Algorithm 1 + Sec. III-B/C).

On every ranking request the policy maps each message's ``(C_i, R_i)`` to
the priority :math:`U_i` (Eq. 10, or its Eq. 13 Taylor truncation) using:

* λ from an intermeeting estimator (shared fleet-wide by default, per-node
  if fully distributed);
* :math:`m_i` from the copy's spray-time lineage (Eq. 15);
* :math:`d_i` from the gossiped dropped lists (Fig. 5), merged at each
  contact;
* :math:`n_i = m_i + 1 - d_i` (Eq. 14), floored at 1 — the ranking needs a
  live copy to exist (this one).

The router then sends the highest-priority eligible message first and, on
overflow, drops the lowest-priority message among the buffer *and the
newcomer* — exactly Algorithm 1.

With ``params.estimator == "oracle"`` the distributed estimators are
replaced by exact global knowledge (:class:`repro.core.oracle.GlobalInfectionOracle`),
quantifying the estimation error (ablation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import params as P
from repro.core.dropped_list import DroppedListStore
from repro.core.intermeeting import (
    IntermeetingEstimator,
    MinIntermeetingEstimator,
    PairIntermeetingEstimator,
)
from repro.core.oracle import GlobalInfectionOracle
from repro.core.params import SdsrpParams
from repro.core.priority import (
    p_delivered,
    p_remaining,
    priority_closed_form,
    priority_taylor,
)
from repro.core.spray_tree import estimate_infected
from repro.errors import ConfigurationError
from repro.net.message import Message
from repro.net.outcomes import DROP_OVERFLOW
from repro.policies.base import BufferPolicy, PolicyContext
from repro.world.node import Node


@dataclass
class SdsrpShared:
    """State shared by all SDSRP nodes of one scenario.

    The intermeeting estimator is fleet-shared by default because the paper
    fits a single λ per scenario (Fig. 3); passing ``shared=None`` to each
    policy instead gives every node its own estimator (fully distributed
    mode, ablation).  The oracle slot is populated by the scenario builder
    when the oracle estimator is requested.
    """

    estimator: IntermeetingEstimator
    oracle: GlobalInfectionOracle | None = None
    params: SdsrpParams = field(default_factory=SdsrpParams)

    @classmethod
    def for_fleet(
        cls,
        n_nodes: int,
        params: SdsrpParams | None = None,
        oracle: GlobalInfectionOracle | None = None,
    ) -> "SdsrpShared":
        """Build shared state with the estimator the params ask for."""
        params = params or SdsrpParams()
        estimator = _build_estimator(params, n_nodes)
        return cls(estimator=estimator, oracle=oracle, params=params)


def _build_estimator(params: SdsrpParams, n_nodes: int) -> IntermeetingEstimator:
    if params.intermeeting_mode == P.INTERMEETING_MIN:
        return MinIntermeetingEstimator(
            prior_mean=params.prior_intermeeting,
            n_nodes=n_nodes,
            min_samples=params.prior_weight,
        )
    return PairIntermeetingEstimator(
        prior_mean=params.prior_intermeeting,
        min_samples=params.prior_weight,
    )


class SdsrpPolicy(BufferPolicy):
    """Scheduling and Drop Strategy on spray and wait Routing Protocol."""

    name = "sdsrp"
    compare_newcomer = True  # Algorithm 1: the newcomer competes
    # The priority is a pure function of message/estimator state, so batch
    # evaluation (vector engine backend) is exact; priorities() pushes the
    # whole buffer through the same repro.core.priority ufuncs the scalar
    # path uses, which makes the two bit-identical per element.
    batchable = True

    def __init__(
        self,
        params: SdsrpParams | None = None,
        shared: SdsrpShared | None = None,
    ) -> None:
        super().__init__()
        if shared is not None and params is not None and shared.params is not params:
            raise ConfigurationError(
                "pass params either directly or inside shared, not both"
            )
        self.params = shared.params if shared is not None else (params or SdsrpParams())
        self.shared = shared
        self._estimator: IntermeetingEstimator | None = (
            shared.estimator if shared is not None else None
        )
        self.dropped: DroppedListStore | None = None
        self._n_nodes = 0

    # -- lifecycle -----------------------------------------------------------

    def attach(self, ctx: PolicyContext) -> None:
        super().attach(ctx)
        self._n_nodes = ctx.n_nodes
        self.dropped = DroppedListStore(ctx.node.id)
        if self._estimator is None:
            self._estimator = _build_estimator(self.params, ctx.n_nodes)
        if self.params.estimator == P.ESTIMATOR_ORACLE and (
            self.shared is None or self.shared.oracle is None
        ):
            raise ConfigurationError(
                "oracle estimator requires a SdsrpShared with an oracle attached"
            )

    # -- estimation plumbing ------------------------------------------------------

    @property
    def estimator(self) -> IntermeetingEstimator:
        if self._estimator is None:
            raise ConfigurationError("policy used before attach()")
        return self._estimator

    def _lambda(self) -> float:
        return self.estimator.rate()

    def _infection(self, message: Message, now: float) -> tuple[int, int]:
        """(m_i, n_i) for *message* per the configured estimator."""
        assert self.dropped is not None
        if self.params.estimator == P.ESTIMATOR_ORACLE:
            assert self.shared is not None and self.shared.oracle is not None
            oracle = self.shared.oracle
            return oracle.m_seen(message.msg_id), oracle.n_holders(message.msg_id)
        m = estimate_infected(
            message.spray_times,
            now,
            self.estimator.mean_min_intermeeting(self._n_nodes),
            self._n_nodes,
            extrapolate=self.params.extrapolate_spray_tree,
        )
        d = self.dropped.count_drops(message.msg_id)
        n = max(1, m + 1 - d)  # Eq. 14, floored: this copy exists
        return m, n

    # -- the priority (both rankings, Algorithm 1) ----------------------------------

    def _priority_copies(self, message: Message) -> int:
        """The C_i fed into Eqs. 6-13; GBSD neutralizes it to 1."""
        return message.copies

    def priority(self, message: Message, now: float) -> float:
        """U_i (Eq. 10 / Eq. 13) for *message* as held by this node."""
        m, n = self._infection(message, now)
        lam = self._lambda()
        c = self._priority_copies(message)
        r = message.remaining_ttl(now)
        if self.params.priority_form == P.FORM_CLOSED:
            value = priority_closed_form(c, r, m, n, lam, self._n_nodes)
        else:
            pt = p_delivered(m, self._n_nodes)
            pr = p_remaining(c, r, n, lam, self._n_nodes)
            value = priority_taylor(pt, pr, n, terms=self.params.taylor_terms)
        return float(value)

    def priorities(self, messages: list[Message], now: float) -> list[float]:
        """U_i for a whole message list, one ufunc pass (exact vs scalar).

        ``m_i``/``n_i`` estimation stays per message (spray-time lineages
        have ragged lengths); the float-heavy Eq. 10/13 evaluation is
        batched.  Element k equals ``priority(messages[k], now)`` to the
        last bit because both paths run the identical
        :mod:`repro.core.priority` ufunc pipeline.
        """
        if not messages:
            return []
        lam = self._lambda()
        m_list: list[int] = []
        n_list: list[int] = []
        for message in messages:
            m, n = self._infection(message, now)
            m_list.append(m)
            n_list.append(n)
        copies = np.array([self._priority_copies(m) for m in messages])
        r = np.array([m.remaining_ttl(now) for m in messages])
        m_arr = np.array(m_list)
        n_arr = np.array(n_list)
        if self.params.priority_form == P.FORM_CLOSED:
            values = priority_closed_form(
                copies, r, m_arr, n_arr, lam, self._n_nodes
            )
        else:
            pt = p_delivered(m_arr, self._n_nodes)
            pr = p_remaining(copies, r, n_arr, lam, self._n_nodes)
            values = priority_taylor(pt, pr, n_arr, terms=self.params.taylor_terms)
        return [float(v) for v in values]

    def send_priority(self, message: Message, now: float) -> float:
        return self.priority(message, now)

    def drop_priority(self, message: Message, now: float) -> float:
        return self.priority(message, now)

    def send_priorities(self, messages: list[Message], now: float) -> list[float]:
        return self.priorities(messages, now)

    def drop_priorities(self, messages: list[Message], now: float) -> list[float]:
        return self.priorities(messages, now)

    # -- hooks ------------------------------------------------------------------

    def will_accept(self, message: Message, now: float) -> bool:
        assert self.dropped is not None
        rule = self.params.reject_rule
        if rule == P.REJECT_OWN:
            return not self.dropped.has_dropped(message.msg_id)
        if rule == P.REJECT_ANY:
            return not self.dropped.seen_by_any(message.msg_id)
        return True

    def on_message_dropped(self, message: Message, now: float, reason: str) -> None:
        if self.params.gossip_drops and reason == DROP_OVERFLOW:
            assert self.dropped is not None
            self.dropped.record_drop(message.msg_id, now, message.expires_at())

    def on_link_up(self, peer: Node, now: float) -> None:
        assert self.ctx is not None
        # Feeding is endpoint-symmetric: pair estimators dedupe internally,
        # min estimators want both endpoints' node-level samples.
        self.estimator.observe_link_up(self.ctx.node.id, peer.id, now)
        # Gossip: adopt the peer's newer dropped-list records (Fig. 5).
        peer_policy = peer.router.policy if peer.router is not None else None
        if isinstance(peer_policy, SdsrpPolicy) and peer_policy.dropped is not None:
            assert self.dropped is not None
            if self.params.prune_dropped_lists:
                self.dropped.prune(now)
            self.dropped.merge_from(peer_policy.dropped)

    def on_link_down(self, peer: Node, now: float) -> None:
        assert self.ctx is not None
        self.estimator.observe_link_down(self.ctx.node.id, peer.id, now)
