"""SDSRP — the paper's contribution.

* :mod:`repro.core.priority` — the delivery-probability and priority math
  (Eqs. 4-13 of the paper), scalar and vectorized.
* :mod:`repro.core.intermeeting` — intermeeting-time estimation
  (Definitions 1-2, Eq. 3): λ and λ_min = (N-1)λ.
* :mod:`repro.core.dropped_list` — the gossiped dropped-message records
  (Fig. 5) used to estimate :math:`d_i(T_i)`.
* :mod:`repro.core.spray_tree` — the binary-spray-tree estimate of
  :math:`m_i(T_i)` (Eq. 15, Fig. 6).
* :mod:`repro.core.sdsrp` — the buffer policy combining all of the above
  (Algorithm 1).
* :mod:`repro.core.oracle` — a global-knowledge oracle supplying exact
  :math:`m_i, n_i, d_i` (ablation against the distributed estimators).
"""

from repro.core.dropped_list import DroppedListStore, DropRecord
from repro.core.knapsack import KnapsackSdsrpPolicy
from repro.core.intermeeting import (
    IntermeetingEstimator,
    MinIntermeetingEstimator,
    OnlineIntermeetingEstimator,
    PairIntermeetingEstimator,
    StaticIntermeetingEstimator,
)
from repro.core.oracle import GlobalInfectionOracle
from repro.core.params import SdsrpParams
from repro.core.priority import (
    PEAK_P_R,
    delivery_probability,
    exponent_coefficient,
    p_delivered,
    p_remaining,
    priority_closed_form,
    priority_from_probabilities,
    priority_taylor,
)
from repro.core.sdsrp import SdsrpPolicy, SdsrpShared
from repro.core.spray_tree import estimate_infected

__all__ = [
    "PEAK_P_R",
    "DropRecord",
    "DroppedListStore",
    "GlobalInfectionOracle",
    "IntermeetingEstimator",
    "KnapsackSdsrpPolicy",
    "MinIntermeetingEstimator",
    "OnlineIntermeetingEstimator",
    "PairIntermeetingEstimator",
    "SdsrpParams",
    "SdsrpPolicy",
    "SdsrpShared",
    "StaticIntermeetingEstimator",
    "delivery_probability",
    "estimate_infected",
    "exponent_coefficient",
    "p_delivered",
    "p_remaining",
    "priority_closed_form",
    "priority_from_probabilities",
    "priority_taylor",
]
