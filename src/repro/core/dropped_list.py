"""Gossiped dropped-message records (paper Fig. 5).

Every node maintains one **own record** — the set of messages *it* has
dropped, stamped with the time of its latest drop — plus cached records
gossiped from other nodes.  On contact, two nodes exchange records and keep,
for each origin node, the copy with the newest record time ("only the source
node can modify the record time... updating the record with the nearest
record time").  ``d_i(T_i)`` (Table I) is then the number of node records
containing message i.

The merge is a last-writer-wins map union: commutative, associative and
idempotent (property-tested in ``tests/core/test_dropped_list.py``), so
gossip order cannot corrupt the estimate.

Records also carry each dropped message's expiry time so stale entries
(messages past TTL, which no longer influence any buffer) can be pruned —
the paper assumes the structure is negligibly small; pruning keeps that true
in long runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DropRecord:
    """One node's dropped-message list.

    ``dropped`` maps message id -> expiry time (absolute seconds), so pruning
    does not need to consult any other component.
    """

    node_id: int
    record_time: float = float("-inf")
    dropped: dict[str, float] = field(default_factory=dict)

    def copy(self) -> "DropRecord":
        return DropRecord(self.node_id, self.record_time, dict(self.dropped))


class DroppedListStore:
    """The per-node gossip store."""

    def __init__(self, node_id: int) -> None:
        self.node_id = int(node_id)
        self._own = DropRecord(node_id)
        #: origin node id -> newest known record from that node.
        self._records: dict[int, DropRecord] = {node_id: self._own}

    # -- local drops --------------------------------------------------------

    def record_drop(self, msg_id: str, now: float, expires_at: float) -> None:
        """Add a drop by this node; bumps the own record's time (Fig. 5)."""
        self._own.dropped[msg_id] = float(expires_at)
        self._own.record_time = float(now)

    def has_dropped(self, msg_id: str) -> bool:
        """True if *this* node previously dropped the message (reject rule)."""
        return msg_id in self._own.dropped

    # -- gossip -------------------------------------------------------------

    def merge_from(self, other: "DroppedListStore") -> None:
        """Adopt any record of *other* that is newer than ours (LWW union)."""
        for origin, theirs in other._records.items():
            if origin == self.node_id:
                continue  # only we are authoritative for our own record
            mine = self._records.get(origin)
            if mine is None or theirs.record_time > mine.record_time:
                self._records[origin] = theirs.copy()

    def known_records(self) -> dict[int, DropRecord]:
        """Snapshot view (origin -> record), including the own record."""
        return dict(self._records)

    # -- estimation -----------------------------------------------------------

    def count_drops(self, msg_id: str) -> int:
        """d_i — number of known nodes whose list contains *msg_id*."""
        return sum(1 for rec in self._records.values() if msg_id in rec.dropped)

    def seen_by_any(self, msg_id: str) -> bool:
        """True if any known record lists *msg_id* (``reject="any"`` mode)."""
        return any(msg_id in rec.dropped for rec in self._records.values())

    # -- maintenance -----------------------------------------------------------

    def prune(self, now: float) -> int:
        """Forget entries for messages whose TTL has fully elapsed.

        Returns the number of entries removed.  The own record's
        ``record_time`` is *not* touched — pruning is not a drop event.
        """
        removed = 0
        for rec in self._records.values():
            stale = [mid for mid, exp in rec.dropped.items() if exp <= now]
            for mid in stale:
                del rec.dropped[mid]
            removed += len(stale)
        return removed

    def __len__(self) -> int:
        """Total dropped entries across all known records."""
        return sum(len(rec.dropped) for rec in self._records.values())
