"""Global-knowledge infection oracle (ablation).

The paper notes most prior work "make[s] a strong assumption that the
unknown parameters can be obtained through the centralized control channel"
(Sec. III-C) and contributes distributed estimators instead.  This oracle
implements that strong assumption — exact :math:`m_i`, :math:`n_i`,
:math:`d_i` maintained from simulator events — so the cost of the paper's
estimators can be quantified (``sdsrp-oracle`` vs ``sdsrp`` in the ablation
benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.simulator import Simulator
from repro.net.message import Message
from repro.net.outcomes import ReceiveOutcome
from repro.world.node import Node


@dataclass
class _InfectionState:
    source: int
    #: nodes currently holding a copy (includes the source while it holds).
    holders: set[int] = field(default_factory=set)
    #: nodes (excluding source) that have ever held/seen a copy.
    seen: set[int] = field(default_factory=set)
    #: number of copy-drop events.
    drops: int = 0


class GlobalInfectionOracle:
    """Tracks exact per-message infection state from listener events."""

    def __init__(self) -> None:
        self._state: dict[str, _InfectionState] = {}

    # -- wiring ----------------------------------------------------------------

    def subscribe(self, sim: Simulator) -> None:
        """Attach to a simulator's listener registry."""
        sim.listeners.subscribe("message.created", self._on_created)
        sim.listeners.subscribe("message.relayed", self._on_relayed)
        sim.listeners.subscribe("message.dropped", self._on_dropped)

    # -- event handlers -----------------------------------------------------------

    def _on_created(self, message: Message) -> None:
        state = _InfectionState(source=message.source)
        state.holders.add(message.source)
        self._state[message.msg_id] = state

    def _on_relayed(
        self, message: Message, sender: Node, receiver: Node, outcome: object
    ) -> None:
        state = self._state.get(message.msg_id)
        if state is None:
            return
        if receiver.id != state.source:
            state.seen.add(receiver.id)
        if outcome == ReceiveOutcome.ACCEPTED:
            state.holders.add(receiver.id)
        elif outcome == ReceiveOutcome.DELIVERED:
            # The delivering sender's copy is spent (router removes it) and
            # the destination absorbs its copy.
            state.holders.discard(sender.id)
        elif outcome == ReceiveOutcome.REJECTED_OVERFLOW:
            # The newcomer copy was destroyed on arrival; the drop event for
            # it also fires, but the receiver never held it — pre-discard so
            # _on_dropped's discard is a no-op for the holder set.
            pass

    def _on_dropped(self, message: Message, node: Node, reason: str) -> None:
        state = self._state.get(message.msg_id)
        if state is None:
            return
        state.holders.discard(node.id)
        state.drops += 1

    # -- queries ---------------------------------------------------------------

    def m_seen(self, msg_id: str) -> int:
        """Exact m_i — distinct non-source nodes that received a copy."""
        state = self._state.get(msg_id)
        return 0 if state is None else len(state.seen)

    def n_holders(self, msg_id: str) -> int:
        """Exact n_i — nodes currently holding a copy (min 1 for ranking)."""
        state = self._state.get(msg_id)
        return 1 if state is None else max(1, len(state.holders))

    def drop_count(self, msg_id: str) -> int:
        """Exact number of drop events for the message."""
        state = self._state.get(msg_id)
        return 0 if state is None else state.drops
