r"""Binary-spray-tree estimate of :math:`m_i(T_i)` (paper Eq. 15, Fig. 6).

Each message copy records the times its lineage was binary-sprayed
(:attr:`repro.net.message.Message.spray_times`).  Every spray created a
branch which, by the paper's model, keeps re-spraying every
:math:`E(I_{min})` seconds; a branch created at :math:`t_k` has therefore
grown to :math:`2^{\lfloor (t_{now} - t_k)/E(I_{min}) \rfloor}` nodes, and

.. math::

    m_i(T_i) = \sum_{k=1}^{n-1} 2^{\lfloor (t_n - t_k)/E(I_{min}) \rfloor} + 1

where :math:`t_n` is the **latest spray time of this copy's lineage** — not
the current time.  The trailing ``+1`` is the :math:`k = n` branch, whose
exponent is zero at that instant.  Freezing the reference at :math:`t_n` is
the paper's Eq. 15 exactly (Fig. 6 draws the estimated branches only up to
:math:`t_3`, the latest spray) and keeps the estimate conservative: a copy
that has not managed to spray recently does not assume the rest of the tree
kept doubling.  ``extrapolate=True`` switches to evaluating at the current
time instead (the aggressive reading; ablation — it saturates quickly under
congestion and collapses priorities to ties).

Either way the estimate is clamped to the only physically possible range,
``[len(spray_times), n_nodes - 1]``.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ConfigurationError

#: Exponent cap: 2**_MAX_EXP already exceeds any realistic fleet size, and
#: capping avoids huge-int construction for very old messages.
_MAX_EXP = 62


def estimate_infected(
    spray_times: Sequence[float],
    now: float,
    mean_min_intermeeting: float,
    n_nodes: int,
    extrapolate: bool = False,
) -> int:
    """Estimate m_i — nodes (excluding the source) that have seen the message.

    Parameters
    ----------
    spray_times:
        The copy's recorded binary-spray times (possibly empty: a source
        that never sprayed knows no other node has the message).
    now:
        Current simulation time; must be >= every spray time.  Only used as
        the branch-growth reference when ``extrapolate=True``; the paper's
        Eq. 15 references the latest spray time instead.
    mean_min_intermeeting:
        :math:`E(I_{min})` from the intermeeting estimator.
    n_nodes:
        Fleet size N (upper-bounds the estimate at N-1).
    extrapolate:
        Grow branches up to *now* instead of the last spray (ablation).
    """
    if mean_min_intermeeting <= 0:
        raise ConfigurationError(
            f"mean_min_intermeeting must be positive: {mean_min_intermeeting}"
        )
    if n_nodes < 2:
        raise ConfigurationError(f"need at least 2 nodes: {n_nodes}")
    if not spray_times:
        return 0
    t_ref = now if extrapolate else max(spray_times)
    if now < max(spray_times):
        raise ConfigurationError(
            f"spray time {max(spray_times)} is in the future (now={now})"
        )
    total = 0
    for t_k in spray_times:
        exponent = min(int((t_ref - t_k) // mean_min_intermeeting), _MAX_EXP)
        total += 1 << exponent
        if total >= n_nodes - 1:
            return n_nodes - 1
    # At least one distinct node per recorded spray event actually exists.
    return max(total, len(spray_times))
