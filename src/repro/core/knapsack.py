"""Knapsack-based scheduling and drop (the authors' companion strategy).

The paper's contribution list cites the authors' own "Knapsack-based Message
Scheduling and Drop Strategy" (EWSN 2015, ref. [11]): instead of evicting a
single lowest-priority message per arrival, treat the buffer as a knapsack —
keep the subset of messages (among the buffered ones and the newcomer) that
maximizes total priority subject to the byte capacity.

With the paper's uniform 0.5 MB messages the knapsack degenerates to plain
priority ranking; with *heterogeneous* message sizes the two differ, and
this policy picks by greedy **priority density** (U_i per byte), the
classic 1/2-approximation.  Provided as the natural extension for mixed-size
traffic (registered as ``sdsrp-knapsack``) and exercised by the ablation
benchmarks with mixed-size workloads.
"""

from __future__ import annotations

from repro.core.sdsrp import SdsrpPolicy
from repro.net.message import Message


class KnapsackSdsrpPolicy(SdsrpPolicy):
    """SDSRP priorities + knapsack victim selection on overflow."""

    name = "sdsrp-knapsack"
    compare_newcomer = True

    def select_victims(
        self,
        buffered: list[Message],
        incoming: Message,
        capacity: int,
        now: float,
    ) -> tuple[bool, list[Message]]:
        """Choose what to keep by greedy priority density.

        Returns ``(accept_incoming, victims)`` where *victims* are buffered
        messages to drop.  The pinned/unpinned split is the router's
        responsibility — *buffered* contains only droppable messages, and
        *capacity* is the byte budget available to them plus the newcomer
        (total capacity minus pinned/undroppable bytes).
        """
        candidates = [*buffered, incoming]
        density = {
            m.msg_id: self.priority(m, now) / m.size for m in candidates
        }
        keep: set[str] = set()
        budget = capacity
        for msg in sorted(candidates, key=lambda m: density[m.msg_id],
                          reverse=True):
            if msg.size <= budget:
                keep.add(msg.msg_id)
                budget -= msg.size
        accept = incoming.msg_id in keep
        victims = [m for m in buffered if m.msg_id not in keep]
        return accept, victims
