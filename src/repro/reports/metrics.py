"""Message-level metrics (paper Sec. IV-A).

Definitions, matching the paper and ONE's ``MessageStatsReport``:

* **delivery ratio** — unique messages delivered / messages generated.
* **average hopcounts** — mean hop count of the delivering copies.
* **overhead ratio** — (relayed − delivered) / delivered, where *relayed*
  counts completed transfers (including newcomers that subsequently lost the
  receiving node's drop decision, as ONE does) and *delivered* counts unique
  deliveries.
"""

from __future__ import annotations

import math

from repro.engine.simulator import Simulator
from repro.net.message import Message
from repro.net.outcomes import ReceiveOutcome
from repro.world.node import Node


class MetricsCollector:
    """Subscribes to simulator topics and accumulates the paper's metrics.

    ``warmup`` (seconds) reproduces ONE's report warm-up: messages created
    before the warm-up deadline are excluded from every counter — creation,
    relays, deliveries, drops — so steady-state behaviour can be measured
    without the empty-network transient.  The paper reports without warm-up
    (the default).
    """

    def __init__(self, warmup: float = 0.0) -> None:
        self.warmup = float(warmup)
        self._excluded: set[str] = set()
        self.created = 0
        self.delivered = 0
        self.relayed = 0
        self.relayed_accepted = 0
        self.aborted = 0
        self.started = 0
        self.drops_by_reason: dict[str, int] = {}
        self.faults_by_kind: dict[str, int] = {}
        self.hop_counts: list[int] = []
        self.latencies: list[float] = []
        self._created_at: dict[str, float] = {}
        self._now = lambda: 0.0

    # -- wiring ----------------------------------------------------------------

    def subscribe(self, sim: Simulator) -> None:
        """Attach to a simulator's listener registry."""
        self._now = lambda: sim.now
        sim.listeners.subscribe("message.created", self._on_created)
        sim.listeners.subscribe("message.relayed", self._on_relayed)
        sim.listeners.subscribe("message.delivered", self._on_delivered)
        sim.listeners.subscribe("message.dropped", self._on_dropped)
        sim.listeners.subscribe("transfer.started", self._on_started)
        sim.listeners.subscribe("transfer.aborted", self._on_aborted)
        sim.listeners.subscribe("fault.injected", self._on_fault)

    # -- handlers ----------------------------------------------------------------

    def _on_created(self, message: Message) -> None:
        if message.created_at < self.warmup:
            self._excluded.add(message.msg_id)
            return
        self.created += 1
        self._created_at[message.msg_id] = message.created_at

    def _on_relayed(
        self, message: Message, sender: Node, receiver: Node, outcome: object
    ) -> None:
        if message.msg_id in self._excluded:
            return
        self.relayed += 1
        if outcome != ReceiveOutcome.REJECTED_OVERFLOW:
            # Excludes newcomers destroyed by the receiving drop policy.
            self.relayed_accepted += 1

    def _on_delivered(self, message: Message, sender: Node, receiver: Node) -> None:
        if message.msg_id in self._excluded:
            return
        self.delivered += 1
        self.hop_counts.append(message.hop_count)
        created = self._created_at.get(message.msg_id, message.created_at)
        self.latencies.append(self._now() - created)

    def _on_dropped(self, message: Message, node: Node, reason: str) -> None:
        if message.msg_id in self._excluded:
            return
        self.drops_by_reason[reason] = self.drops_by_reason.get(reason, 0) + 1

    def _on_started(self, transfer: object) -> None:
        self.started += 1

    def _on_aborted(self, transfer: object) -> None:
        self.aborted += 1

    def _on_fault(self, kind: str, now: float) -> None:
        # Fault counters are not warm-up filtered: outages are a property of
        # the run, not of any particular message.
        self.faults_by_kind[kind] = self.faults_by_kind.get(kind, 0) + 1

    # -- derived metrics -------------------------------------------------------------

    @property
    def delivery_ratio(self) -> float:
        """Delivered / created (0 when nothing was generated)."""
        return self.delivered / self.created if self.created else 0.0

    @property
    def average_hopcount(self) -> float:
        """Mean hops of delivering copies (nan when nothing delivered)."""
        if not self.hop_counts:
            return math.nan
        return sum(self.hop_counts) / len(self.hop_counts)

    @property
    def average_latency(self) -> float:
        """Mean creation-to-delivery delay (nan when nothing delivered)."""
        if not self.latencies:
            return math.nan
        return sum(self.latencies) / len(self.latencies)

    @property
    def overhead_ratio(self) -> float:
        """(relayed − delivered) / delivered (nan when nothing delivered)."""
        if self.delivered == 0:
            return math.nan
        return (self.relayed - self.delivered) / self.delivered

    @property
    def drops_total(self) -> int:
        return sum(self.drops_by_reason.values())

    @property
    def faults_total(self) -> int:
        return sum(self.faults_by_kind.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Metrics created={self.created} delivered={self.delivered} "
            f"relayed={self.relayed} drops={self.drops_by_reason}>"
        )
