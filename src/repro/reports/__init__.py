"""Metrics collection and reporting.

* :class:`repro.reports.metrics.MetricsCollector` — the paper's three
  headline metrics (delivery ratio, average hopcounts, overhead ratio) plus
  latency and drop accounting.
* :class:`repro.reports.contact_report.ContactReport` — contact counts,
  durations and intermeeting samples (Fig. 3 input).
* :class:`repro.reports.buffer_report.BufferReport` — buffer occupancy over
  time and drop breakdowns.
* :class:`repro.reports.summary.RunSummary` — one run's results as a record.
"""

from repro.reports.buffer_report import BufferReport
from repro.reports.contact_report import ContactReport
from repro.reports.fate import MessageFate, MessageFateReport
from repro.reports.metrics import MetricsCollector
from repro.reports.summary import RunSummary

__all__ = [
    "BufferReport",
    "ContactReport",
    "MessageFate",
    "MessageFateReport",
    "MetricsCollector",
    "RunSummary",
]
