"""Per-message fate report (ONE's ``MessageStatsReport`` granularity).

Tracks every message's life: creation, relays, drops, delivery (time, hops,
latency).  Exports to CSV for offline analysis and feeds the examples that
inspect *which* messages a policy sacrifices.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path

from repro.engine.simulator import Simulator
from repro.net.message import Message
from repro.net.outcomes import ReceiveOutcome
from repro.world.node import Node


@dataclass
class MessageFate:
    """Everything that happened to one logical message."""

    msg_id: str
    source: int
    destination: int
    size: int
    created_at: float
    ttl: float
    initial_copies: int
    relays: int = 0
    drops: dict[str, int] = field(default_factory=dict)
    delivered_at: float | None = None
    delivery_hops: int | None = None

    @property
    def delivered(self) -> bool:
        return self.delivered_at is not None

    @property
    def latency(self) -> float | None:
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.created_at


class MessageFateReport:
    """Collects a :class:`MessageFate` per created message."""

    def __init__(self) -> None:
        self.fates: dict[str, MessageFate] = {}
        self._now = lambda: 0.0

    def subscribe(self, sim: Simulator) -> None:
        self._now = lambda: sim.now
        sim.listeners.subscribe("message.created", self._on_created)
        sim.listeners.subscribe("message.relayed", self._on_relayed)
        sim.listeners.subscribe("message.delivered", self._on_delivered)
        sim.listeners.subscribe("message.dropped", self._on_dropped)

    # -- handlers ------------------------------------------------------------

    def _on_created(self, message: Message) -> None:
        self.fates[message.msg_id] = MessageFate(
            msg_id=message.msg_id,
            source=message.source,
            destination=message.destination,
            size=message.size,
            created_at=message.created_at,
            ttl=message.ttl,
            initial_copies=message.initial_copies,
        )

    def _fate(self, message: Message) -> MessageFate | None:
        return self.fates.get(message.msg_id)

    def _on_relayed(self, message: Message, sender: Node, receiver: Node,
                    outcome: ReceiveOutcome) -> None:
        fate = self._fate(message)
        if fate is not None:
            fate.relays += 1

    def _on_delivered(self, message: Message, sender: Node, receiver: Node) -> None:
        fate = self._fate(message)
        if fate is not None and fate.delivered_at is None:
            fate.delivered_at = self._now()
            fate.delivery_hops = message.hop_count

    def _on_dropped(self, message: Message, node: Node, reason: str) -> None:
        fate = self._fate(message)
        if fate is not None:
            fate.drops[reason] = fate.drops.get(reason, 0) + 1

    # -- analysis --------------------------------------------------------------

    def delivered_fates(self) -> list[MessageFate]:
        return [f for f in self.fates.values() if f.delivered]

    def undelivered_fates(self) -> list[MessageFate]:
        return [f for f in self.fates.values() if not f.delivered]

    def drop_events_total(self) -> int:
        return sum(sum(f.drops.values()) for f in self.fates.values())

    # -- export -----------------------------------------------------------------

    _CSV_FIELDS = (
        "msg_id", "source", "destination", "size", "created_at", "ttl",
        "initial_copies", "relays", "drops_total", "delivered",
        "delivered_at", "delivery_hops", "latency",
    )

    def write_csv(self, path: str | Path) -> None:
        """One row per created message."""
        with Path(path).open("w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=self._CSV_FIELDS)
            writer.writeheader()
            for fate in self.fates.values():
                writer.writerow(
                    {
                        "msg_id": fate.msg_id,
                        "source": fate.source,
                        "destination": fate.destination,
                        "size": fate.size,
                        "created_at": fate.created_at,
                        "ttl": fate.ttl,
                        "initial_copies": fate.initial_copies,
                        "relays": fate.relays,
                        "drops_total": sum(fate.drops.values()),
                        "delivered": int(fate.delivered),
                        "delivered_at": fate.delivered_at,
                        "delivery_hops": fate.delivery_hops,
                        "latency": fate.latency,
                    }
                )
