"""Contact statistics: counts, durations and intermeeting samples.

The intermeeting samples are the raw material of the paper's Fig. 3
(distribution of intermeeting times ≈ exponential); feed them to
:func:`repro.analysis.fitting.fit_exponential`.
"""

from __future__ import annotations

import numpy as np

from repro.engine.simulator import Simulator
from repro.world.node import Node

PairKey = tuple[int, int]


class ContactReport:
    """Records link up/down events per node pair."""

    def __init__(self) -> None:
        self.contact_count = 0
        self._durations: list[float] = []
        self._intermeetings: list[float] = []
        self._up_since: dict[PairKey, float] = {}
        self._last_down: dict[PairKey, float] = {}
        self._now = lambda: 0.0

    def subscribe(self, sim: Simulator) -> None:
        """Attach to a simulator's listener registry."""
        self._now = lambda: sim.now
        sim.listeners.subscribe("link.up", self._on_up)
        sim.listeners.subscribe("link.down", self._on_down)

    @staticmethod
    def _key(a: Node, b: Node) -> PairKey:
        return (a.id, b.id) if a.id <= b.id else (b.id, a.id)

    def _on_up(self, a: Node, b: Node) -> None:
        key = self._key(a, b)
        now = self._now()
        self.contact_count += 1
        self._up_since[key] = now
        last_down = self._last_down.pop(key, None)
        if last_down is not None and now > last_down:
            self._intermeetings.append(now - last_down)

    def _on_down(self, a: Node, b: Node) -> None:
        key = self._key(a, b)
        now = self._now()
        up_since = self._up_since.pop(key, None)
        if up_since is not None:
            self._durations.append(now - up_since)
        self._last_down[key] = now

    # -- results -----------------------------------------------------------

    def intermeeting_samples(self) -> np.ndarray:
        """All observed pair intermeeting times (seconds)."""
        return np.asarray(self._intermeetings, dtype=float)

    def contact_durations(self) -> np.ndarray:
        """All completed contact durations (seconds)."""
        return np.asarray(self._durations, dtype=float)

    def mean_intermeeting(self) -> float:
        """Mean observed intermeeting time (nan with no samples)."""
        samples = self.intermeeting_samples()
        return float(samples.mean()) if samples.size else float("nan")
