"""One run's results as a plain record (sweep rows, table printing).

Two record types: :class:`RunSummary` for a completed simulation and
:class:`FailedRun` for one that died or timed out inside a resilient sweep
(see :func:`repro.experiments.runner.run_scenario_safe`).  Both round-trip
through plain dicts so the sweep checkpoint file can persist them as JSONL.
"""

from __future__ import annotations

import dataclasses
from dataclasses import asdict, dataclass, field
from typing import Any


@dataclass(frozen=True)
class RunSummary:
    """Headline metrics of a single simulation run."""

    scenario: str
    policy: str
    seed: int
    sim_time: float
    # workload knobs the paper sweeps:
    initial_copies: int
    buffer_bytes: int
    interval_range: tuple[float, float]
    # outcomes:
    created: int
    delivered: int
    relayed: int
    delivery_ratio: float
    average_hopcount: float
    overhead_ratio: float
    average_latency: float
    drops: dict[str, int] = field(default_factory=dict)
    #: Injected-fault counts by kind (empty when the run had no fault plan).
    faults: dict[str, int] = field(default_factory=dict)
    contacts: int = 0
    mean_intermeeting: float = float("nan")
    wall_seconds: float = 0.0
    #: Per-phase wall-time breakdown (self seconds by subsystem, see
    #: :mod:`repro.obs.profiler`); empty unless the run was profiled.
    #: Diagnostic, like ``wall_seconds`` — never simulation state.
    profile: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """Flat dict (drops/faults/profile expanded as prefixed keys)."""
        out = asdict(self)
        drops = out.pop("drops")
        for reason, count in drops.items():
            out[f"drop_{reason}"] = count
        faults = out.pop("faults")
        for kind, count in faults.items():
            out[f"fault_{kind}"] = count
        profile = out.pop("profile")
        for phase, seconds in profile.items():
            out[f"profile_{phase}"] = seconds
        return out

    def record(self) -> dict[str, Any]:
        """Nested dict that :meth:`from_record` restores exactly."""
        return asdict(self)

    @classmethod
    def from_record(cls, data: dict[str, Any]) -> "RunSummary":
        """Rebuild a summary from :meth:`record` output (JSON round-trip)."""
        data = dict(data)
        data["interval_range"] = tuple(data["interval_range"])
        return cls(**data)

    @staticmethod
    def table_header() -> str:
        return (
            f"{'policy':<12} {'L':>4} {'buffer':>10} {'rate':>10} "
            f"{'deliv':>7} {'hops':>6} {'ovh':>7} {'created':>8}"
        )

    def table_row(self) -> str:
        lo, hi = self.interval_range
        return (
            f"{self.policy:<12} {self.initial_copies:>4} "
            f"{self.buffer_bytes / (1024 * 1024):>8.1f}MB "
            f"{f'[{lo:.0f},{hi:.0f}]':>10} "
            f"{self.delivery_ratio:>7.3f} {self.average_hopcount:>6.2f} "
            f"{self.overhead_ratio:>7.2f} {self.created:>8}"
        )


@dataclass(frozen=True)
class FailedRun:
    """A sweep item that did not produce a summary.

    Returned (never raised) by the resilient sweep path so one crashed or
    hung worker cannot poison a multi-hour grid; results stay in input
    order with failures in place.
    """

    scenario: str
    policy: str
    seed: int
    error_type: str
    error_message: str
    traceback: str = ""
    attempts: int = 1

    def as_dict(self) -> dict[str, Any]:
        return asdict(self)

    record = as_dict  # same nested form; kept for symmetry with RunSummary

    @classmethod
    def from_record(cls, data: dict[str, Any]) -> "FailedRun":
        return cls(**data)

    def replace_attempts(self, attempts: int) -> "FailedRun":
        """Copy with the attempt counter updated (retry bookkeeping)."""
        return dataclasses.replace(self, attempts=attempts)

    def table_row(self) -> str:
        return (
            f"{self.policy:<12} FAILED seed={self.seed} "
            f"{self.error_type}: {self.error_message}"
        )
