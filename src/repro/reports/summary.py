"""One run's results as a plain record (sweep rows, table printing)."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any


@dataclass(frozen=True)
class RunSummary:
    """Headline metrics of a single simulation run."""

    scenario: str
    policy: str
    seed: int
    sim_time: float
    # workload knobs the paper sweeps:
    initial_copies: int
    buffer_bytes: int
    interval_range: tuple[float, float]
    # outcomes:
    created: int
    delivered: int
    relayed: int
    delivery_ratio: float
    average_hopcount: float
    overhead_ratio: float
    average_latency: float
    drops: dict[str, int] = field(default_factory=dict)
    contacts: int = 0
    mean_intermeeting: float = float("nan")
    wall_seconds: float = 0.0

    def as_dict(self) -> dict[str, Any]:
        """Flat dict (drops expanded as ``drop_<reason>`` keys)."""
        out = asdict(self)
        drops = out.pop("drops")
        for reason, count in drops.items():
            out[f"drop_{reason}"] = count
        return out

    @staticmethod
    def table_header() -> str:
        return (
            f"{'policy':<12} {'L':>4} {'buffer':>10} {'rate':>10} "
            f"{'deliv':>7} {'hops':>6} {'ovh':>7} {'created':>8}"
        )

    def table_row(self) -> str:
        lo, hi = self.interval_range
        return (
            f"{self.policy:<12} {self.initial_copies:>4} "
            f"{self.buffer_bytes / (1024 * 1024):>8.1f}MB "
            f"{f'[{lo:.0f},{hi:.0f}]':>10} "
            f"{self.delivery_ratio:>7.3f} {self.average_hopcount:>6.2f} "
            f"{self.overhead_ratio:>7.2f} {self.created:>8}"
        )
