"""Buffer occupancy over time.

Samples every node's buffer occupancy on a fixed cadence and tallies drops;
used by the congestion examples and the buffer-sweep sanity checks (higher
congestion ⇒ higher mean occupancy ⇒ more overflow drops).
"""

from __future__ import annotations

import numpy as np

from repro.engine.simulator import Simulator
from repro.world.node import Node


class BufferReport:
    """Periodic fleet-wide occupancy sampling."""

    def __init__(self, nodes: list[Node], sample_interval: float = 60.0) -> None:
        self.nodes = nodes
        self.sample_interval = float(sample_interval)
        self._times: list[float] = []
        self._mean_occupancy: list[float] = []
        self._max_occupancy: list[float] = []

    def subscribe(self, sim: Simulator) -> None:
        """Register the recurring sampling event."""
        sim.schedule_every(
            self.sample_interval, self._sample, sim, name="report.buffer"
        )

    def _sample(self, sim: Simulator) -> None:
        occ = np.array([node.buffer.occupancy() for node in self.nodes])
        self._times.append(sim.now)
        self._mean_occupancy.append(float(occ.mean()))
        self._max_occupancy.append(float(occ.max()))

    # -- results -----------------------------------------------------------

    def series(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(times, mean occupancy, max occupancy) arrays."""
        return (
            np.asarray(self._times),
            np.asarray(self._mean_occupancy),
            np.asarray(self._max_occupancy),
        )

    def mean_occupancy(self) -> float:
        """Time-averaged fleet-mean occupancy (nan with no samples)."""
        if not self._mean_occupancy:
            return float("nan")
        return float(np.mean(self._mean_occupancy))
