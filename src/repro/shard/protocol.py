"""Wire protocol between the shard coordinator and its workers.

Messages are plain tuples of JSON-ish values sent over a duplex
``multiprocessing`` pipe (spawn context, same start-method discipline as
:mod:`repro.parallel.pool`).  Coordinator -> worker:

``("init", payload)``
    (Re)position the worker's replica.  *payload* carries either an inline
    ``replica`` state (pushed from the coordinator's live world) or the
    path of the worker's rolling ``snapshot`` file, the stripe assignment,
    and the exact barrier times to ``replay`` after restoring — the times
    are recorded coordinator floats, never re-derived arithmetic, because
    recurring-event times accumulate float drift that ``k * tick`` would
    not reproduce.
``("assign", stripes)``
    Change the stripe assignment (degradation fold).
``("tick", seq, now)``
    Barrier *seq*: advance the replica to *now* and return owned pairs.
``("snap", seq)``
    Write the rolling per-shard snapshot (atomic, checksummed — the
    :mod:`repro.snapshot` codec) capturing the replica as of barrier *seq*.
``("bye",)``
    Clean shutdown.

Worker -> coordinator: ``("ready", time)`` / ``("init-error", reason)``
after init, ``("hb", seq)`` immediately on receiving a tick (liveness,
distinct from completion), ``("pairs", seq, pairs, digest)`` with the
position digest as a lockstep-drift tripwire, ``("snapped", seq, path)``,
``("assigned", stripes)``.

The replica a worker holds is the full fleet's *mobility* state plus the
``"mobility"`` RNG stream — movement is replicated, only contact detection
is decomposed.  Replicated movement is what buys byte-identity: every
worker advances the same state with the same draws, so ownership filtering
is the only thing that differs between shards, and the merged pair set is
the single-process detector output exactly.
"""

from __future__ import annotations

import hashlib
from typing import Any

import numpy as np

from repro.mobility.base import MobilityModel
from repro.snapshot.capture import _capture_mobility
from repro.snapshot.restore import _restore_mobility

__all__ = [
    "capture_replica",
    "positions_digest",
    "restore_replica",
]


def capture_replica(
    mobility: MobilityModel, stream: np.random.Generator
) -> dict[str, Any]:
    """JSON-safe replica state: mobility arrays + the mobility RNG stream.

    The stream's bit-generator state must travel with the arrays — a
    freshly-seeded stream is at position zero, not mid-run, and the first
    waypoint redraw after restore would diverge without it.
    """
    return {
        "mobility": _capture_mobility(mobility),
        "rng_state": stream.bit_generator.state,
    }


def restore_replica(
    mobility: MobilityModel,
    stream: np.random.Generator,
    replica: dict[str, Any],
) -> None:
    """Inverse of :func:`capture_replica` (onto a built, initialized pair)."""
    _restore_mobility(mobility, replica["mobility"])
    stream.bit_generator.state = replica["rng_state"]


def positions_digest(positions: np.ndarray) -> str:
    """SHA-256 over the raw position bytes — the per-barrier drift tripwire.

    Coordinator and every worker advance replicas of the same mobility
    state; a digest mismatch means lockstep broke (version skew, a
    non-deterministic kernel) and must fail the run loudly rather than
    silently merge pairs computed from different worlds.
    """
    return hashlib.sha256(
        np.ascontiguousarray(positions).tobytes()
    ).hexdigest()
