"""Shard worker lifecycle: spawn, heartbeat deadlines, retries, quarantine.

The supervisor owns the worker processes and the *failure policy*; the
coordinator (:mod:`repro.shard.coordinator`) owns the barrier protocol and
asks the supervisor three questions: is this shard overdue, may it be
respawned again, and what does giving up on it cost.  Deadline detection is
a pure function of an injectable clock (the :mod:`repro.service.supervisor`
idiom), so tests drive stall/heartbeat semantics deterministically without
processes; respawn pacing uses the seeded equal-jitter
:func:`repro.experiments.sweep.backoff_delays` over the shard's named
stream seed ``derive_seed(seed, "shard", i)`` through an injectable sleep —
never an ambient ``time.sleep`` (reprolint REP010).

A shard that exhausts its respawn budget is *quarantined*: its config is
written as a self-contained chaos-corpus reproducer
(:mod:`repro.chaos.corpus`), so triage of a poison region starts from the
same artifact the fuzzer produces, and the coordinator folds its stripes
into the survivors.
"""

from __future__ import annotations

import os
import signal
import time
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError
from repro.experiments.sweep import backoff_delays
from repro.parallel.pool import _pool_context
from repro.rng import derive_seed
from repro.shard.worker import shard_worker_main

__all__ = ["ShardHandle", "ShardStats", "ShardSupervisor"]


@dataclass
class ShardHandle:
    """One live worker: process + pipe + assignment + liveness bookkeeping."""

    shard_id: int
    incarnation: int
    process: Any
    conn: Any
    stripes: tuple[int, ...]
    #: Injected-clock timestamp of the last message received (any kind).
    last_seen: float = 0.0


@dataclass
class ShardStats:
    """Counters the recovery tests and the smoke harness assert on."""

    spawns: int = 0
    respawns: int = 0
    worker_deaths: int = 0
    stalls: int = 0
    snapshot_recoveries: int = 0
    push_recoveries: int = 0
    folds: int = 0
    quarantined: int = 0
    digest_checks: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(vars(self))


def _spawn_worker(
    config: Any,
    shard_id: int,
    incarnation: int,
    snapshot_path: str,
    kill_at: int | None,
) -> tuple[Any, Any]:
    """Default spawn: a daemonic spawn-context process + duplex pipe."""
    ctx = _pool_context()
    parent_conn, child_conn = ctx.Pipe(duplex=True)
    proc = ctx.Process(
        target=shard_worker_main,
        args=(child_conn, config, shard_id, incarnation, snapshot_path, kill_at),
        daemon=True,
    )
    proc.start()
    # Close the parent's copy of the child end or worker death would never
    # surface as EOF on parent_conn.
    child_conn.close()
    return proc, parent_conn


class ShardSupervisor:
    """Spawns and polices the shard workers for one coordinator."""

    def __init__(
        self,
        config: Any,
        *,
        snapshot_dir: str | os.PathLike[str],
        barrier_timeout: float = 30.0,
        max_respawns: int = 2,
        backoff_base: float = 0.05,
        backoff_cap: float = 1.0,
        quarantine_dir: str | os.PathLike[str] | None = None,
        clock: Callable[[], float] | None = None,
        sleep: Callable[[float], None] = time.sleep,
        spawn_fn: Callable[..., tuple[Any, Any]] = _spawn_worker,
    ) -> None:
        if barrier_timeout <= 0:
            raise ConfigurationError(
                f"barrier_timeout must be positive: {barrier_timeout}"
            )
        if max_respawns < 0:
            raise ConfigurationError(
                f"max_respawns must be >= 0: {max_respawns}"
            )
        self.config = config
        self.snapshot_dir = Path(snapshot_dir)
        self.barrier_timeout = float(barrier_timeout)
        self.max_respawns = int(max_respawns)
        self._backoff_base = backoff_base
        self._backoff_cap = backoff_cap
        self._quarantine_dir = (
            Path(quarantine_dir) if quarantine_dir is not None else None
        )
        # perf_counter, not time.time: pacing/deadlines only, REP002-clean.
        self._clock = clock if clock is not None else time.perf_counter
        self._sleep = sleep
        self._spawn_fn = spawn_fn
        self.handles: dict[int, ShardHandle] = {}
        self._incarnations: dict[int, int] = {}
        self._respawns_used: dict[int, int] = {}
        self.stats = ShardStats()

    # -- lifecycle ---------------------------------------------------------

    def snapshot_path(self, shard_id: int) -> Path:
        return self.snapshot_dir / f"shard-{shard_id}.snap.gz"

    def _kill_at(self, shard_id: int, incarnation: int) -> int | None:
        """The chaos barrier-crash trigger, first incarnation only."""
        kill = getattr(self.config, "shard_kill", None)
        if kill is not None and incarnation == 0 and kill[0] == shard_id:
            return int(kill[1])
        return None

    def spawn(self, shard_id: int, stripes: tuple[int, ...]) -> ShardHandle:
        """Start (or restart) the worker for *shard_id*."""
        incarnation = self._incarnations.get(shard_id, -1) + 1
        self._incarnations[shard_id] = incarnation
        proc, conn = self._spawn_fn(
            self.config,
            shard_id,
            incarnation,
            str(self.snapshot_path(shard_id)),
            self._kill_at(shard_id, incarnation),
        )
        handle = ShardHandle(
            shard_id=shard_id,
            incarnation=incarnation,
            process=proc,
            conn=conn,
            stripes=tuple(stripes),
            last_seen=self._clock(),
        )
        self.handles[shard_id] = handle
        self.stats.spawns += 1
        if incarnation > 0:
            self.stats.respawns += 1
        return handle

    def live_ids(self) -> list[int]:
        return sorted(self.handles)

    def note(self, shard_id: int) -> None:
        """A message arrived from *shard_id*: refresh its deadline."""
        handle = self.handles.get(shard_id)
        if handle is not None:
            handle.last_seen = self._clock()

    def overdue(self, shard_id: int) -> bool:
        """True when the shard has been silent past the barrier timeout.

        Pure clock arithmetic — heartbeats (which :meth:`note` records)
        keep a slow-but-alive worker from being declared dead.
        """
        handle = self.handles.get(shard_id)
        if handle is None:
            return False
        return self._clock() - handle.last_seen > self.barrier_timeout

    def discard(self, shard_id: int) -> ShardHandle | None:
        """Kill and forget the shard's current worker (it stays eligible
        for respawn).  Safe on already-dead processes."""
        handle = self.handles.pop(shard_id, None)
        if handle is None:
            return None
        try:
            handle.conn.close()
        except OSError:
            pass
        proc = handle.process
        pid = getattr(proc, "pid", None)
        if pid is not None and proc.is_alive():
            os.kill(pid, signal.SIGKILL)
        if hasattr(proc, "join"):
            proc.join(timeout=5.0)
        return handle

    def shutdown(self) -> None:
        for shard_id in list(self.handles):
            self.discard(shard_id)

    # -- failure policy ----------------------------------------------------

    def respawns_left(self, shard_id: int) -> int:
        return self.max_respawns - self._respawns_used.get(shard_id, 0)

    def consume_respawn(self, shard_id: int) -> float:
        """Burn one respawn attempt and return its seeded backoff delay."""
        used = self._respawns_used.get(shard_id, 0)
        if used >= self.max_respawns:
            raise ConfigurationError(
                f"shard {shard_id} has no respawn budget left"
            )
        self._respawns_used[shard_id] = used + 1
        return self.backoff_schedule(shard_id)[used]

    def backoff_schedule(self, shard_id: int) -> list[float]:
        """The shard's full seeded retry-delay schedule (deterministic)."""
        return backoff_delays(
            derive_seed(self.config.seed, "shard", shard_id),
            max(1, self.max_respawns),
            base=self._backoff_base,
            cap=self._backoff_cap,
        )

    def pace(self, delay: float) -> None:
        """Wait out a backoff delay via the injected sleep."""
        if delay > 0:
            self._sleep(delay)

    def quarantine(self, shard_id: int, cause: str) -> str:
        """Write the poison region as a chaos-corpus reproducer."""
        self.stats.quarantined += 1
        if self._quarantine_dir is None:
            return ""
        from repro.chaos.corpus import make_entry, write_entry
        from repro.chaos.oracles import ORACLE_CRASH, OracleFailure

        entry = make_entry(
            self.config,
            OracleFailure(
                oracle=ORACLE_CRASH,
                detail=(
                    f"shard {shard_id} quarantined after "
                    f"{self._respawns_used.get(shard_id, 0)} respawns: "
                    f"{cause}"
                ),
                invariant="ShardWorkerDeath",
            ),
        )
        try:
            return str(write_entry(self._quarantine_dir, entry))
        except OSError as exc:
            # Quarantine is diagnostics; a full disk must not turn a
            # recoverable degradation into a crashed run.
            return f"unwritable: {exc}"
