"""Shard worker process: a lockstep mobility replica answering for stripes.

Spawn-picklable entry point (:func:`shard_worker_main`) run in a
``spawn``-context process per shard.  The worker builds the scenario's
mobility model fresh, restores the replica state it is handed (inline push
or its rolling snapshot file), replays the recorded barrier times, and then
serves the tick-barrier protocol of :mod:`repro.shard.protocol`: advance to
the exact barrier time, detect contact pairs on its stripe windows, filter
by ownership, reply.

Failure semantics are deliberately blunt: any unexpected exception escapes
``shard_worker_main`` and kills the process, the coordinator sees EOF on
the pipe and drives recovery.  The worker never tries to limp along with
corrupt state — a dead worker is recoverable by construction (snapshot +
replay), a silently wrong one is not.

The ``kill_at`` argument implements the chaos barrier-crash fault
(``ScenarioConfig.shard_kill``): on its first incarnation only, the worker
SIGKILLs itself upon *receiving* that barrier — before heartbeating — so
the coordinator observes the worst case: a shard that goes dark mid-barrier
with its tick unanswered.
"""

from __future__ import annotations

import os
import signal
from multiprocessing.connection import Connection
from typing import Any

from repro.errors import SnapshotError
from repro.rng import RngFactory
from repro.shard.partition import StripePlan
from repro.shard.protocol import (
    capture_replica,
    positions_digest,
    restore_replica,
)
from repro.snapshot.capture import encode_config
from repro.snapshot.codec import (
    canonical_json,
    make_snapshot,
    read_snapshot,
    write_snapshot,
)
from repro.world.contacts import make_detector

__all__ = ["shard_worker_main"]


def shard_worker_main(
    conn: Connection,
    config: Any,
    shard_id: int,
    incarnation: int,
    snapshot_path: str,
    kill_at: int | None,
) -> None:
    """Serve barriers until ``("bye",)`` or pipe closure."""
    # Imported here, not at module top: the runner imports the shard world
    # lazily, and this keeps the worker's import graph acyclic with it.
    from repro.experiments.runner import _make_mobility

    mobility = _make_mobility(config)
    stream = RngFactory(config.seed).stream("mobility")
    mobility.initialize(stream)
    plan = StripePlan.for_area(config.area, config.shard_count)
    detector = make_detector(config.n_nodes, config.detector)
    radius = float(config.radio_range)
    stripes: tuple[int, ...] = ()

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return  # coordinator went away; die quietly
        kind = msg[0]

        if kind == "init":
            payload = msg[1]
            try:
                replica = _load_replica(payload, config)
            except SnapshotError as exc:
                # Snapshot missing/corrupt/mismatched: report and stay
                # alive — the coordinator falls back to an inline push.
                conn.send(("init-error", str(exc)))
                continue
            restore_replica(mobility, stream, replica)
            stripes = tuple(payload["stripes"])
            for t in payload["replay"]:
                mobility.advance(t)
            conn.send(("ready", mobility._time))

        elif kind == "assign":
            stripes = tuple(msg[1])
            conn.send(("assigned", list(stripes)))

        elif kind == "tick":
            _, seq, now = msg
            if kill_at is not None and incarnation == 0 and seq == kill_at:
                os.kill(os.getpid(), signal.SIGKILL)
            conn.send(("hb", seq))
            positions = mobility.advance(now)
            pairs = plan.owned_pairs(positions, radius, detector, stripes)
            conn.send(("pairs", seq, pairs, positions_digest(positions)))

        elif kind == "snap":
            _, seq = msg
            snap = make_snapshot(
                encode_config(config),
                {
                    "shard": shard_id,
                    "barrier_seq": seq,
                    "time": mobility._time,
                    "replica": capture_replica(mobility, stream),
                },
            )
            write_snapshot(snap, snapshot_path)
            conn.send(("snapped", seq, snapshot_path))

        elif kind == "bye":
            conn.close()
            return


def _load_replica(payload: dict[str, Any], config: Any) -> dict[str, Any]:
    """The replica state from an init payload (inline beats file)."""
    if payload.get("replica") is not None:
        return dict(payload["replica"])
    path = payload.get("snapshot")
    if not path:
        raise SnapshotError("init payload carries neither replica nor snapshot")
    snap = read_snapshot(path)
    if canonical_json(snap.config) != canonical_json(encode_config(config)):
        raise SnapshotError(
            f"shard snapshot {path} was written for a different config"
        )
    return dict(snap.state["replica"])
