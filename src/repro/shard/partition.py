"""Stripe partitioning of the map and ownership of contact pairs.

The shard engine decomposes the *contact plane* spatially: the map's x-axis
is cut into ``shard_count`` contiguous stripes (:func:`stripe_spans`), and
every candidate pair is **owned** by exactly one stripe — the one whose
half-open span contains the pair's midpoint x-coordinate (positions outside
the map clamp to the first/last stripe).  Ownership is a pure function of
the two endpoint coordinates and the stripe edges, so *any* computer of a
pair — a worker owning that stripe, a survivor that inherited it after a
fold, or the coordinator running the stripe inline — reaches the identical
verdict, and the union of owned pairs over all stripes equals the full
detector output for every ``shard_count``.  That identity is what makes
shard results byte-identical to the single-process run and degradation
(reassigning stripes) free of determinism hazards.

A worker never needs the whole fleet to answer for its stripes: a pair
whose midpoint lies in ``[lo, hi)`` has both endpoints within ``radius`` of
the span (the midpoint is within ``radius/2`` of each endpoint, and a
detected pair's endpoints are within ``radius`` of each other), so the
candidate set is the x-window ``[lo - radius, hi + radius]``.  Detection on
that subset uses the same per-pair float arithmetic as detection on the
full array (all three detectors decide each pair from its two coordinate
rows alone), so subset detection is exactly the restriction of full
detection — including radius-boundary ties.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.parallel.partition import stripe_spans
from repro.world.contacts import ContactDetector

__all__ = ["StripePlan"]


@dataclass(frozen=True)
class StripePlan:
    """Fixed stripe geometry for one run (width and count never change;
    only the stripe -> worker *assignment* moves during degradation)."""

    width: float
    count: int
    spans: tuple[tuple[float, float], ...]

    @classmethod
    def for_area(cls, area: tuple[float, float], count: int) -> "StripePlan":
        width = float(area[0])
        return cls(
            width=width,
            count=count,
            spans=tuple(stripe_spans(width, count)),
        )

    def _inner_edges(self) -> np.ndarray:
        """The count-1 internal cut points (span lower bounds except 0)."""
        return np.asarray([lo for lo, _ in self.spans[1:]], dtype=np.float64)

    def owners(self, mid_x: np.ndarray) -> np.ndarray:
        """Owning stripe index for each midpoint x (clamped at the ends).

        ``searchsorted(edges, mid, side="right")`` counts internal edges
        <= mid, which is exactly the span index; midpoints left of the map
        get stripe 0 and midpoints at/after the last edge get the final
        stripe, so every float owns exactly one stripe.
        """
        return np.searchsorted(self._inner_edges(), mid_x, side="right")

    def candidate_indices(
        self, positions: np.ndarray, stripes: tuple[int, ...], radius: float
    ) -> np.ndarray:
        """Global node indices (ascending) that can appear in a pair owned
        by any stripe in *stripes* — the stripe windows padded by *radius*."""
        if radius <= 0:
            raise ConfigurationError(f"radius must be positive: {radius}")
        x = positions[:, 0]
        mask = np.zeros(len(x), dtype=bool)
        for s in stripes:
            if not 0 <= s < self.count:
                raise ConfigurationError(
                    f"stripe {s} out of range for {self.count} stripes"
                )
            lo, hi = self.spans[s]
            mask |= (x >= lo - radius) & (x <= hi + radius)
        return np.nonzero(mask)[0]

    def owned_pairs(
        self,
        positions: np.ndarray,
        radius: float,
        detector: ContactDetector,
        stripes: tuple[int, ...],
    ) -> list[tuple[int, int]]:
        """All detector pairs owned by *stripes*, as sorted global pairs.

        Runs *detector* on the candidate subset only, maps local indices
        back to global ids (the candidate index array is ascending, so
        local ``a < b`` implies global ``i < j``), then keeps the pairs
        whose midpoint ownership lands in *stripes*.
        """
        if not stripes:
            return []
        idx = self.candidate_indices(positions, stripes, radius)
        if idx.size < 2:
            return []
        local = detector.pairs(positions[idx], radius)
        if not local:
            return []
        arr = np.asarray(sorted(local), dtype=np.int64)
        gi = idx[arr[:, 0]]
        gj = idx[arr[:, 1]]
        mid = 0.5 * (positions[gi, 0] + positions[gj, 0])
        keep = np.isin(self.owners(mid), np.asarray(stripes, dtype=np.int64))
        return [(int(a), int(b)) for a, b in zip(gi[keep], gj[keep])]
