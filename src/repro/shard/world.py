"""A :class:`~repro.world.world.World` whose contact plane is sharded.

Everything order-dependent — routing, transfers, traffic, faults, metrics —
runs unchanged in this process; only :meth:`World._detect_pairs` is
overridden to answer from the worker fleet via the coordinator's tick
barrier.  The world still advances its own mobility (the coordinator's
push-recovery source and digest reference), so from the simulator's point
of view a sharded run is the scalar engine with a different detector, which
is precisely why its traces are byte-identical.
"""

from __future__ import annotations

import numpy as np

from repro.engine.simulator import Simulator
from repro.mobility.base import MobilityModel
from repro.net.transfer import TransferManager
from repro.shard.coordinator import ShardCoordinator
from repro.world.contacts import ContactDetector
from repro.world.node import Node
from repro.world.world import World

__all__ = ["ShardedWorld"]


class ShardedWorld(World):
    """World variant delegating contact detection to shard workers."""

    def __init__(
        self,
        sim: Simulator,
        mobility: MobilityModel,
        nodes: list[Node],
        transfer_manager: TransferManager,
        detector: ContactDetector | None = None,
        tick: float = 1.0,
        *,
        coordinator: ShardCoordinator,
    ) -> None:
        super().__init__(
            sim, mobility, nodes, transfer_manager, detector, tick=tick
        )
        self.coordinator = coordinator

    def start(self, rng: np.random.Generator) -> None:
        super().start(rng)
        # Workers spawn lazily at the first barrier; attaching the live
        # mobility + stream here arms the push-recovery/seed path first.
        self.coordinator.attach(self.mobility, rng)

    def _detect_pairs(self) -> set[tuple[int, int]]:
        return self.coordinator.pairs(self.sim.now, self.positions)

    def close(self) -> None:
        self.coordinator.close()
