"""Crash-tolerant spatial sharding of the contact plane (docs/sharding.md).

``ScenarioConfig.shard_count > 1`` stripes the map across supervised
spawn-context worker processes that hold lockstep mobility replicas and
answer contact-pair queries for the stripes they own at a tick barrier.
Results are byte-identical to the single-process run for any shard count,
including across worker crashes (snapshot + exact-barrier-time replay
recovery) and graceful degradation (stripes folding into survivors, down
to a plain in-process run).
"""

from repro.shard.coordinator import ShardCoordinator
from repro.shard.partition import StripePlan
from repro.shard.supervisor import ShardHandle, ShardStats, ShardSupervisor
from repro.shard.world import ShardedWorld

__all__ = [
    "ShardCoordinator",
    "ShardHandle",
    "ShardStats",
    "ShardSupervisor",
    "ShardedWorld",
    "StripePlan",
]
