"""The tick-barrier coordinator: merge, recover, degrade.

One :class:`ShardCoordinator` serves one :class:`~repro.shard.world.ShardedWorld`.
Per world tick it runs a barrier: send ``("tick", seq, now)`` to every live
worker in shard-id order, collect ``("pairs", ...)`` answers under the
supervisor's heartbeat deadline, verify each answer's position digest
against the coordinator's own (lockstep-drift tripwire), and merge the
owned-pair lists in fixed shard-id order.  Because stripe ownership is a
pure per-pair function (:mod:`repro.shard.partition`), the merged set is
byte-for-byte the single-process detector output for any shard count.

Failure handling, in escalation order:

1. **Recover** — a worker that dies (pipe EOF) or stalls past its deadline
   is discarded and respawned after a seeded backoff.  The respawn restores
   from the shard's rolling snapshot and replays the recorded barrier times
   (exact floats — recurring-event times carry accumulated rounding that
   ``k * tick`` would not reproduce), or, before a first snapshot exists,
   from a state push off the coordinator's live replica.  The in-flight
   barrier is then re-sent and the run continues byte-identically.
2. **Degrade** — a shard whose respawn budget is exhausted is quarantined
   (chaos-corpus reproducer) and its stripes are folded into the
   lowest-id surviving worker; with no survivors they fold into the
   coordinator itself, which computes them inline — all the way down to a
   plain single-process run.  Folds change *who* computes a stripe, never
   *what* it answers, so results stay identical.

The coordinator is deliberately synchronous and single-threaded: barrier
latency is bounded by the slowest worker anyway, and a sequential recovery
path is one that deterministic tests can actually pin down.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from collections.abc import Callable
from multiprocessing.connection import wait as _conn_wait
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import ConfigurationError, InvariantViolation
from repro.shard.partition import StripePlan
from repro.shard.protocol import capture_replica, positions_digest
from repro.shard.supervisor import ShardHandle, ShardSupervisor
from repro.world.contacts import ContactDetector, make_detector

__all__ = ["ShardCoordinator"]


class ShardCoordinator:
    """Drives the shard workers for one run; owns nothing simulated."""

    def __init__(
        self,
        config: Any,
        *,
        barrier_timeout: float = 30.0,
        snap_every: int = 50,
        max_respawns: int = 2,
        quarantine_dir: str | None = None,
        snapshot_dir: str | None = None,
        clock: Callable[[], float] | None = None,
        sleep: Callable[[float], None] = time.sleep,
        poll_interval: float = 0.02,
        spawn_fn: Callable[..., tuple[Any, Any]] | None = None,
    ) -> None:
        if config.shard_count < 2:
            raise ConfigurationError(
                f"ShardCoordinator needs shard_count >= 2: {config.shard_count}"
            )
        if snap_every < 1:
            raise ConfigurationError(f"snap_every must be >= 1: {snap_every}")
        self.config = config
        self.plan = StripePlan.for_area(config.area, config.shard_count)
        self.radius = float(config.radio_range)
        self.snap_every = int(snap_every)
        self._poll_interval = float(poll_interval)
        self._owns_snapshot_dir = snapshot_dir is None
        self._snapshot_dir = Path(
            snapshot_dir
            if snapshot_dir is not None
            else tempfile.mkdtemp(prefix="repro-shard-")
        )
        sup_kwargs: dict[str, Any] = dict(
            snapshot_dir=self._snapshot_dir,
            barrier_timeout=barrier_timeout,
            max_respawns=max_respawns,
            quarantine_dir=quarantine_dir,
            clock=clock,
            sleep=sleep,
        )
        if spawn_fn is not None:
            sup_kwargs["spawn_fn"] = spawn_fn
        self.supervisor = ShardSupervisor(config, **sup_kwargs)
        #: Workers get longer than a barrier to come up: a spawn imports
        #: numpy and rebuilds the scenario's mobility before it can answer.
        self.init_timeout = max(float(barrier_timeout), 15.0)
        self._detector: ContactDetector | None = None
        self._mobility: Any = None
        self._stream: np.random.Generator | None = None
        self._started = False
        self._closed = False
        self._seq = 0
        #: Stripes the coordinator computes in-process (after total
        #: degradation); disjoint from every live worker's assignment.
        self._inline: tuple[int, ...] = ()
        #: Recorded (seq, now) of past barriers, pruned to the oldest live
        #: shard snapshot — the recovery replay source.
        self._barrier_times: list[tuple[int, float]] = []
        #: Barrier seq of each shard's last completed rolling snapshot.
        self._last_snap: dict[int, int] = {}

    # -- wiring ------------------------------------------------------------

    def attach(self, mobility: Any, stream: np.random.Generator) -> None:
        """Give the coordinator the world's live mobility + RNG stream
        (the push-recovery source).  Called by ``ShardedWorld.start``."""
        self._mobility = mobility
        self._stream = stream

    def _inline_detector(self) -> ContactDetector:
        if self._detector is None:
            self._detector = make_detector(
                self.config.n_nodes, self.config.detector
            )
        return self._detector

    @property
    def stats(self) -> dict[str, int]:
        return self.supervisor.stats.as_dict()

    # -- startup -----------------------------------------------------------

    def _ensure_started(self) -> None:
        if self._started:
            return
        if self._mobility is None or self._stream is None:
            raise ConfigurationError(
                "ShardCoordinator.attach() must run before the first barrier"
            )
        self._started = True
        for shard_id in range(self.config.shard_count):
            if not self._bring_up(shard_id, (shard_id,)):
                # Startup failures burn the shard's whole respawn budget;
                # fold immediately (no barrier in flight to recompute).
                self._quarantine_and_fold(
                    shard_id, (shard_id,), "never came up"
                )

    def _bring_up(self, shard_id: int, stripes: tuple[int, ...]) -> bool:
        """Spawn + init until ready, burning backoff budget on failures."""
        sup = self.supervisor
        while True:
            if self._spawn_and_init(shard_id, stripes):
                return True
            if sup.respawns_left(shard_id) <= 0:
                return False
            sup.pace(sup.consume_respawn(shard_id))

    def _spawn_and_init(
        self,
        shard_id: int,
        stripes: tuple[int, ...],
        *,
        include_current: bool = False,
    ) -> ShardHandle | None:
        """One spawn + init attempt; a spawn that cannot even fork counts
        as a failed attempt, not a coordinator crash."""
        sup = self.supervisor
        try:
            handle = sup.spawn(shard_id, stripes)
        except OSError:
            return None
        if not self._init_worker(handle, include_current=include_current):
            sup.discard(shard_id)
            return None
        return handle

    def _init_payload(
        self, shard_id: int, stripes: tuple[int, ...], *, include_current: bool
    ) -> dict[str, Any]:
        """Snapshot-restore payload when the shard has one, else a push."""
        sup = self.supervisor
        path = sup.snapshot_path(shard_id)
        since = self._last_snap.get(shard_id, 0)
        if since > 0 and path.exists():
            # The replay list must hold every barrier time in the window,
            # as recorded: advance() subdivides each leg by max_step, so
            # skipping an intermediate barrier (or re-deriving times as
            # k * tick) would change the dt sequence and break lockstep.
            bound = self._seq + 1 if include_current else self._seq
            return {
                "snapshot": str(path),
                "replica": None,
                "stripes": list(stripes),
                "replay": [
                    t for (s, t) in self._barrier_times if since < s < bound
                ],
            }
        assert self._mobility is not None and self._stream is not None
        return {
            "snapshot": None,
            "replica": capture_replica(self._mobility, self._stream),
            "stripes": list(stripes),
            "replay": [],
        }

    def _init_worker(
        self, handle: ShardHandle, *, include_current: bool = False
    ) -> bool:
        """Send init and await ``ready`` (falling back from a bad snapshot
        to a push).  False means the worker is unusable and not yet dead."""
        payload = self._init_payload(
            handle.shard_id, handle.stripes, include_current=include_current
        )
        if handle.incarnation > 0:
            if payload["snapshot"] is not None:
                self.supervisor.stats.snapshot_recoveries += 1
            else:
                self.supervisor.stats.push_recoveries += 1
        if not self._send(handle, ("init", payload)):
            return False
        deadline_used = 0.0
        while deadline_used < self.init_timeout:
            if not handle.conn.poll(self._poll_interval):
                deadline_used += self._poll_interval
                continue
            try:
                msg = handle.conn.recv()
            except (EOFError, OSError):
                return False
            if msg[0] == "ready":
                self.supervisor.note(handle.shard_id)
                return True
            if msg[0] == "init-error":
                if payload["snapshot"] is None:
                    return False
                # Corrupt/mismatched snapshot: push the live state instead.
                assert self._mobility is not None and self._stream is not None
                payload = {
                    "snapshot": None,
                    "replica": capture_replica(self._mobility, self._stream),
                    "stripes": list(handle.stripes),
                    "replay": [],
                }
                if handle.incarnation > 0:
                    self.supervisor.stats.push_recoveries += 1
                if not self._send(handle, ("init", payload)):
                    return False
        return False

    # -- the barrier -------------------------------------------------------

    def pairs(self, now: float, positions: np.ndarray) -> set[tuple[int, int]]:
        """One barrier: the full owned-pair union for this tick."""
        self._ensure_started()
        self._seq += 1
        seq = self._seq
        self._barrier_times.append((seq, float(now)))
        expected = positions_digest(positions)
        results: dict[int, list[tuple[int, int]]] = {}

        for shard_id in self.supervisor.live_ids():
            handle = self.supervisor.handles[shard_id]
            if not self._send(handle, ("tick", seq, now)):
                self._recover(shard_id, seq, now, positions, results,
                              cause="pipe closed at tick send")
        self._pump(seq, now, positions, expected, results)

        if seq % self.snap_every == 0:
            self._snapshot_barrier(seq, now, positions, results)
        self._prune_times()

        merged: set[tuple[int, int]] = set()
        for shard_id in sorted(results):
            merged.update(results[shard_id])
        if self._inline:
            merged.update(
                self.plan.owned_pairs(
                    positions, self.radius, self._inline_detector(),
                    self._inline,
                )
            )
        return merged

    def _pump(
        self,
        seq: int,
        now: float,
        positions: np.ndarray,
        expected: str,
        results: dict[int, list[tuple[int, int]]],
    ) -> None:
        """Collect this barrier's answers, recovering shards that fail."""
        sup = self.supervisor
        while True:
            waiting = [s for s in sup.live_ids() if s not in results]
            if not waiting:
                return
            conns = {sup.handles[s].conn: s for s in waiting}
            for conn in _conn_wait(list(conns), timeout=self._poll_interval):
                shard_id = conns[conn]
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    sup.stats.worker_deaths += 1
                    self._recover(shard_id, seq, now, positions, results,
                                  cause="worker died (pipe EOF)")
                    continue
                sup.note(shard_id)
                self._dispatch(shard_id, msg, seq, expected, results)
            for shard_id in [s for s in sup.live_ids() if s not in results]:
                if sup.overdue(shard_id):
                    sup.stats.stalls += 1
                    self._recover(shard_id, seq, now, positions, results,
                                  cause="heartbeat deadline exceeded")

    def _dispatch(
        self,
        shard_id: int,
        msg: tuple[Any, ...],
        seq: int,
        expected: str,
        results: dict[int, list[tuple[int, int]]],
    ) -> None:
        kind = msg[0]
        if kind == "pairs":
            _, msg_seq, pairs, digest = msg
            if msg_seq != seq or shard_id in results:
                return  # stale or duplicate answer; this barrier has it
            self.supervisor.stats.digest_checks += 1
            if digest != expected:
                raise InvariantViolation(
                    f"shard {shard_id} position digest mismatch at barrier "
                    f"{seq}: replica lockstep broke (worker {digest[:12]}…, "
                    f"coordinator {expected[:12]}…)"
                )
            results[shard_id] = [(int(i), int(j)) for i, j in pairs]
        elif kind == "snapped":
            self._last_snap[shard_id] = int(msg[1])
        # "hb" refreshed the deadline via note(); "assigned"/"ready" acks
        # carry no payload the coordinator still needs.

    # -- recovery / degradation --------------------------------------------

    def _recover(
        self,
        shard_id: int,
        seq: int,
        now: float,
        positions: np.ndarray | None,
        results: dict[int, list[tuple[int, int]]],
        *,
        cause: str,
        resend_tick: bool = True,
    ) -> None:
        """Respawn a failed shard (snapshot + replay, else push); fold its
        stripes into the survivors when the budget is gone."""
        sup = self.supervisor
        handle = sup.discard(shard_id)
        stripes = handle.stripes if handle is not None else ()
        while sup.respawns_left(shard_id) > 0:
            sup.pace(sup.consume_respawn(shard_id))
            # When the tick will NOT be re-sent (snapshot-phase recovery),
            # the replay must land the worker exactly at this barrier's
            # time, so the current barrier is part of the replay window.
            new = self._spawn_and_init(
                shard_id, stripes, include_current=not resend_tick
            )
            if new is None:
                continue
            if resend_tick and not self._send(new, ("tick", seq, now)):
                sup.discard(shard_id)
                continue
            return
        self._quarantine_and_fold(
            shard_id, stripes, cause,
            seq=seq, positions=positions if resend_tick else None,
            results=results,
        )

    def _quarantine_and_fold(
        self,
        shard_id: int,
        stripes: tuple[int, ...],
        cause: str,
        *,
        seq: int | None = None,
        positions: np.ndarray | None = None,
        results: dict[int, list[tuple[int, int]]] | None = None,
    ) -> None:
        """Poison-region quarantine, then graceful degradation."""
        sup = self.supervisor
        sup.quarantine(shard_id, cause)
        sup.stats.folds += 1
        if positions is not None and results is not None:
            # The dead shard still owes this barrier its stripes' pairs;
            # ownership purity lets the coordinator answer for it inline.
            results[shard_id] = self.plan.owned_pairs(
                positions, self.radius, self._inline_detector(), stripes
            )
        survivors = sup.live_ids()
        if survivors:
            survivor = sup.handles[survivors[0]]
            survivor.stripes = tuple(sorted(survivor.stripes + stripes))
            # No ack await: the pipe is FIFO, so the new assignment lands
            # before the next tick; _dispatch drops the "assigned" echo.
            self._send(survivor, ("assign", list(survivor.stripes)))
        else:
            self._inline = tuple(sorted(self._inline + stripes))

    # -- snapshot cadence --------------------------------------------------

    def _snapshot_barrier(
        self,
        seq: int,
        now: float,
        positions: np.ndarray,
        results: dict[int, list[tuple[int, int]]],
    ) -> None:
        """Ask every live worker for a rolling snapshot and await the acks.

        A failure here recovers the worker but skips its snapshot — its
        replay window simply stays anchored at the previous snapshot.
        """
        sup = self.supervisor
        pending = set()
        for shard_id in sup.live_ids():
            if self._send(sup.handles[shard_id], ("snap", seq)):
                pending.add(shard_id)
            else:
                self._recover(shard_id, seq, now, positions, results,
                              cause="pipe closed at snap send",
                              resend_tick=False)
        while pending:
            pending &= set(sup.live_ids())
            done = {
                s for s in pending if self._last_snap.get(s, 0) >= seq
            }
            pending -= done
            if not pending:
                return
            conns = {sup.handles[s].conn: s for s in sorted(pending)}
            for conn in _conn_wait(list(conns), timeout=self._poll_interval):
                shard_id = conns[conn]
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    sup.stats.worker_deaths += 1
                    self._recover(shard_id, seq, now, positions, results,
                                  cause="worker died during snapshot",
                                  resend_tick=False)
                    continue
                sup.note(shard_id)
                self._dispatch(shard_id, msg, seq, "", results)
            for shard_id in sorted(pending):
                if shard_id in sup.live_ids() and sup.overdue(shard_id):
                    sup.stats.stalls += 1
                    self._recover(shard_id, seq, now, positions, results,
                                  cause="snapshot deadline exceeded",
                                  resend_tick=False)

    def _prune_times(self) -> None:
        """Drop barrier times no live shard could still need to replay."""
        live = self.supervisor.live_ids()
        if not live:
            self._barrier_times.clear()
            return
        floor = min(self._last_snap.get(s, 0) for s in live)
        self._barrier_times = [
            (s, t) for (s, t) in self._barrier_times if s > floor
        ]

    # -- plumbing ----------------------------------------------------------

    def _send(self, handle: ShardHandle, msg: tuple[Any, ...]) -> bool:
        try:
            handle.conn.send(msg)
            return True
        except (BrokenPipeError, OSError):
            return False

    def close(self) -> None:
        """Stop every worker and remove the owned snapshot directory."""
        if self._closed:
            return
        self._closed = True
        for shard_id in self.supervisor.live_ids():
            self._send(self.supervisor.handles[shard_id], ("bye",))
        self.supervisor.shutdown()
        if self._owns_snapshot_dir:
            shutil.rmtree(self._snapshot_dir, ignore_errors=True)
