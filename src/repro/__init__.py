"""repro — a reproduction of Wang et al., "A Buffer Management Strategy on
Spray and Wait Routing Protocol in DTNs" (ICPP 2015).

The package is both a general DTN simulator (an ONE-style substrate built
from scratch: engine, mobility, radio/contacts, buffers, transfers, routing)
and the paper's contribution, the SDSRP buffer-management policy, plus the
harness that regenerates every figure of the paper's evaluation.

Quick start::

    from repro.experiments import random_waypoint_scenario, run_scenario

    summary = run_scenario(random_waypoint_scenario(policy="sdsrp", seed=7))
    print(summary.delivery_ratio, summary.overhead_ratio)

Subpackages
-----------

========================  ====================================================
:mod:`repro.engine`       discrete-event core (clock, events, simulator)
:mod:`repro.world`        nodes, radios, contact detection, the world loop
:mod:`repro.mobility`     RWP / walk / direction / trace / taxi mobility
:mod:`repro.net`          messages, buffers, transfers, traffic generation
:mod:`repro.routing`      Spray-and-Wait and baseline routers
:mod:`repro.policies`     buffer policies (FIFO, SnW-O, SnW-C, extras)
:mod:`repro.core`         **SDSRP** — the paper's contribution
:mod:`repro.traces`       movement/contact trace I/O, EPFL loader
:mod:`repro.reports`      metrics (delivery/hops/overhead), contact stats
:mod:`repro.analysis`     exponential fits (Fig. 3), priority curves (Fig. 4)
:mod:`repro.experiments`  scenario presets, sweeps, figure generators, CLI
:mod:`repro.parallel`     deterministic process-pool sweeps
========================  ====================================================
"""

from repro.errors import (
    ConfigurationError,
    FaultInjectionError,
    InvariantViolation,
    ReproBufferError,
    ReproError,
    SimulationError,
    SweepInterrupted,
    TraceFormatError,
    TransferError,
)

__version__ = "1.2.0"

__all__ = [
    "ConfigurationError",
    "FaultInjectionError",
    "InvariantViolation",
    "ReproBufferError",
    "ReproError",
    "SimulationError",
    "SweepInterrupted",
    "TraceFormatError",
    "TransferError",
    "__version__",
]


def __getattr__(name: str) -> object:
    """Forward deprecated names to :mod:`repro.errors` (warns on access)."""
    if name == "BufferError_":
        from repro import errors

        return getattr(errors, "BufferError_")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
