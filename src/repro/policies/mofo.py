"""MOFO — "evict most forwarded first" (Lindgren & Phanse [9]).

Tracks how many times this node has forwarded each buffered message; on
overflow the most-forwarded one is dropped (it has had the most spreading
opportunities).  Scheduling sends the *least*-forwarded first for the same
reason.  Extra baseline beyond the paper's four.
"""

from __future__ import annotations

from repro.net.message import Message
from repro.policies.base import BufferPolicy


class MofoPolicy(BufferPolicy):
    """Drop the message this node forwarded most often."""

    name = "mofo"
    compare_newcomer = True

    def __init__(self) -> None:
        super().__init__()
        self._forwards: dict[str, int] = {}

    def record_forward(self, msg_id: str) -> None:
        """Called by the router when a transfer of *msg_id* completes."""
        self._forwards[msg_id] = self._forwards.get(msg_id, 0) + 1

    def send_priority(self, message: Message, now: float) -> float:
        return -float(self._forwards.get(message.msg_id, 0))

    def drop_priority(self, message: Message, now: float) -> float:
        return -float(self._forwards.get(message.msg_id, 0))

    def on_message_dropped(self, message: Message, now: float, reason: str) -> None:
        self._forwards.pop(message.msg_id, None)
