"""FIFO policy — plain Spray-and-Wait's buffer behaviour.

The paper's "Spray and Wait" baseline "adopts the FIFO (first in first out)
buffer management strategy" (Sec. IV-A): messages are offered in arrival
order and, on overflow, the oldest-received message is dropped to make room
(ONE's default ``makeRoomForMessage``).  The newcomer is never rejected
(``compare_newcomer = False``).
"""

from __future__ import annotations

from repro.net.message import Message
from repro.policies.base import BufferPolicy


class FifoPolicy(BufferPolicy):
    """Send oldest-arrived first; drop oldest-arrived first."""

    name = "fifo"
    compare_newcomer = False

    def __init__(self) -> None:
        super().__init__()
        self._arrival: dict[str, int] = {}
        self._counter = 0

    def _order(self, message: Message) -> int:
        # Messages created locally before attach/add hooks fire still get a
        # stable order: first time we see an id, assign the next counter.
        if message.msg_id not in self._arrival:
            self._arrival[message.msg_id] = self._counter
            self._counter += 1
        return self._arrival[message.msg_id]

    def send_priority(self, message: Message, now: float) -> float:
        return -float(self._order(message))

    def drop_priority(self, message: Message, now: float) -> float:
        return float(self._order(message))

    def on_message_added(self, message: Message, now: float) -> None:
        self._order(message)

    def on_message_dropped(self, message: Message, now: float, reason: str) -> None:
        # Forget the slot so a later re-arrival is treated as new.
        self._arrival.pop(message.msg_id, None)
