"""Spray-and-Wait-O: remaining-TTL-ratio priority.

The paper's second baseline "regards the ratio between the remaining TTL and
initial TTL as the priority" (Sec. IV-A): fresher messages are sent first and
stale ones are dropped first.  The newcomer competes (it usually wins, having
the largest remaining-TTL ratio in the buffer).
"""

from __future__ import annotations

from repro.net.message import Message
from repro.policies.base import StaticRankPolicy


class TtlRatioPolicy(StaticRankPolicy):
    """Priority = R_i / TTL_i (in [<=1]; negative once expired)."""

    name = "snw-o"
    compare_newcomer = True

    def priority(self, message: Message, now: float) -> float:
        return message.remaining_ttl(now) / message.ttl
