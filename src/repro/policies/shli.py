"""SHLI — "evict shortest life time first" (Lindgren & Phanse [9]).

The message closest to TTL expiry is dropped first (it has the least chance
left of delivery).  Equivalent to ranking by absolute remaining TTL — the
difference from Spray-and-Wait-O is the normalization (absolute seconds
vs. ratio), which only matters for heterogeneous-TTL traffic; both are
provided so that ablation is runnable.
"""

from __future__ import annotations

from repro.net.message import Message
from repro.policies.base import StaticRankPolicy


class ShliPolicy(StaticRankPolicy):
    """Priority = absolute remaining TTL (seconds)."""

    name = "shli"
    compare_newcomer = True

    def priority(self, message: Message, now: float) -> float:
        return message.remaining_ttl(now)
