"""Random policy — uniformly random scheduling and drop order.

The null baseline: any policy that matters should beat it.  The paper argues
Spray-and-Wait-C degenerates to this when the initial copy count is small
(Sec. IV-B-1); the extended benchmarks make that comparison explicit.
"""

from __future__ import annotations

import numpy as np

from repro.net.message import Message
from repro.policies.base import BufferPolicy, PolicyContext


class RandomPolicy(BufferPolicy):
    """Priorities are per-message uniform draws, fixed at first sight."""

    name = "random"
    compare_newcomer = True

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self._rng = np.random.default_rng(seed)
        self._scores: dict[str, float] = {}

    def attach(self, ctx: PolicyContext) -> None:
        super().attach(ctx)
        # Distinct stream per node so fleets don't share draw sequences.
        self._rng = np.random.default_rng(
            np.random.SeedSequence(entropy=ctx.node.id, spawn_key=(0xA11CE,))
        )

    def _score(self, message: Message) -> float:
        if message.msg_id not in self._scores:
            self._scores[message.msg_id] = float(self._rng.random())
        return self._scores[message.msg_id]

    def send_priority(self, message: Message, now: float) -> float:
        return self._score(message)

    def drop_priority(self, message: Message, now: float) -> float:
        return self._score(message)

    def on_message_dropped(self, message: Message, now: float, reason: str) -> None:
        self._scores.pop(message.msg_id, None)
