"""Random policy — uniformly random scheduling and drop order.

The null baseline: any policy that matters should beat it.  The paper argues
Spray-and-Wait-C degenerates to this when the initial copy count is small
(Sec. IV-B-1); the extended benchmarks make that comparison explicit.
"""

from __future__ import annotations

from repro.net.message import Message
from repro.policies.base import BufferPolicy, PolicyContext
from repro.rng import RngFactory


class RandomPolicy(BufferPolicy):
    """Priorities are per-message uniform draws, fixed at first sight."""

    name = "random"
    compare_newcomer = True

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self._seed = int(seed)
        # Standalone (unattached) use: a seeded stream from a private
        # factory, replaced with a node-scoped stream on attach().
        self._rng = RngFactory(self._seed).stream("policy.random")
        self._scores: dict[str, float] = {}

    def attach(self, ctx: PolicyContext) -> None:
        super().attach(ctx)
        # Node-scoped stream from the scenario's seeded registry: each node
        # draws an independent sequence AND the sequences vary with the
        # scenario seed.  (The previous implementation seeded from the node
        # id alone via ambient np.random machinery, so every scenario seed
        # produced identical drop decisions — reprolint REP001's first real
        # catch.)
        factory = ctx.rng if ctx.rng is not None else RngFactory(self._seed)
        self._rng = factory.stream(f"policy.random.{ctx.node.id}")

    def _score(self, message: Message) -> float:
        if message.msg_id not in self._scores:
            self._scores[message.msg_id] = float(self._rng.random())
        return self._scores[message.msg_id]

    def send_priority(self, message: Message, now: float) -> float:
        return self._score(message)

    def drop_priority(self, message: Message, now: float) -> float:
        return self._score(message)

    def on_message_dropped(self, message: Message, now: float, reason: str) -> None:
        self._scores.pop(message.msg_id, None)
