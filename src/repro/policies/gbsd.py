"""GBSD-style utility policy (Krifa & Barakat [15-17]) — related work.

The paper positions SDSRP against the Global-knowledge-Based Scheduling and
Drop family, which targets *Epidemic* routing: the per-message delivery-rate
utility there is :math:`(1 - m_i/(N-1))\\,\\lambda R_i e^{-\\lambda n_i R_i}`
— exactly SDSRP's Eq. 10 with the copy-limit term removed (an unlimited-
replication message behaves like :math:`C_i = 1` in the exponent
coefficient, where :math:`\\log_2 C_i = 0` kills the spray penalty).

Implemented by reusing the SDSRP estimator machinery with the copies term
neutralized, so the paper's "their strategies are only appropriate for
Epidemic routing" comparison is actually runnable: pair ``gbsd`` with the
``epidemic`` router (its intended home) or with Spray-and-Wait (where
ignoring C_i loses information — measurable in the extended benchmarks).
"""

from __future__ import annotations

from repro.core.sdsrp import SdsrpPolicy
from repro.net.message import Message


class GbsdPolicy(SdsrpPolicy):
    """Epidemic-style delivery-rate utility (copies term ignored)."""

    name = "gbsd"
    compare_newcomer = True

    def _priority_copies(self, message: Message) -> int:
        # copies=1 zeroes the spray-penalty/copy terms of Eq. 10, leaving
        # Krifa & Barakat's utility; both the scalar and the batched ranking
        # inherit it through this hook.
        return 1
