"""GBSD-style utility policy (Krifa & Barakat [15-17]) — related work.

The paper positions SDSRP against the Global-knowledge-Based Scheduling and
Drop family, which targets *Epidemic* routing: the per-message delivery-rate
utility there is :math:`(1 - m_i/(N-1))\\,\\lambda R_i e^{-\\lambda n_i R_i}`
— exactly SDSRP's Eq. 10 with the copy-limit term removed (an unlimited-
replication message behaves like :math:`C_i = 1` in the exponent
coefficient, where :math:`\\log_2 C_i = 0` kills the spray penalty).

Implemented by reusing the SDSRP estimator machinery with the copies term
neutralized, so the paper's "their strategies are only appropriate for
Epidemic routing" comparison is actually runnable: pair ``gbsd`` with the
``epidemic`` router (its intended home) or with Spray-and-Wait (where
ignoring C_i loses information — measurable in the extended benchmarks).
"""

from __future__ import annotations

from repro.core import params as P
from repro.core.priority import (
    p_delivered,
    p_remaining,
    priority_closed_form,
    priority_taylor,
)
from repro.core.sdsrp import SdsrpPolicy
from repro.net.message import Message


class GbsdPolicy(SdsrpPolicy):
    """Epidemic-style delivery-rate utility (copies term ignored)."""

    name = "gbsd"
    compare_newcomer = True

    def priority(self, message: Message, now: float) -> float:
        m, n = self._infection(message, now)
        lam = self._lambda()
        r = message.remaining_ttl(now)
        if self.params.priority_form == P.FORM_CLOSED:
            # copies=1 zeroes the spray-penalty/copy terms of Eq. 10,
            # leaving Krifa & Barakat's utility.
            return float(priority_closed_form(1, r, m, n, lam, self._n_nodes))
        pt = p_delivered(m, self._n_nodes)
        pr = p_remaining(1, r, n, lam, self._n_nodes)
        return float(priority_taylor(pt, pr, n, terms=self.params.taylor_terms))
