"""Spray-and-Wait-C: copies-ratio priority.

The paper's third baseline "treats the ratio between the current message
copies number and initial copies number as the priority" (Sec. IV-A):
copies-rich messages are sent first (they need more spray opportunities) and
copies-poor ones are dropped first.
"""

from __future__ import annotations

from repro.net.message import Message
from repro.policies.base import StaticRankPolicy


class CopiesRatioPolicy(StaticRankPolicy):
    """Priority = C_i / C (in (0, 1])."""

    name = "snw-c"
    compare_newcomer = True

    def priority(self, message: Message, now: float) -> float:
        return message.copies / message.initial_copies
