"""Policy registry: build buffer policies by name.

The experiment harness refers to policies by their paper labels
(``fifo``/``snw-o``/``snw-c``/``sdsrp``); downstream users can register
custom policies with :func:`register_policy` and sweep them with the same
harness.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import ConfigurationError
from repro.policies.base import BufferPolicy

_REGISTRY: dict[str, Callable[..., BufferPolicy]] = {}
_builtins_loaded = False


def register_policy(name: str, factory: Callable[..., BufferPolicy]) -> None:
    """Register *factory* under *name* (overwrites are an error)."""
    _ensure_builtins()
    if name in _REGISTRY:
        raise ConfigurationError(f"policy {name!r} already registered")
    _REGISTRY[name] = factory


def available_policies() -> list[str]:
    """Sorted registered policy names."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def make_policy(name: str, **kwargs: object) -> BufferPolicy:
    """Instantiate the policy registered under *name*.

    Keyword arguments are forwarded to the factory (e.g. SDSRP's estimator
    parameters).
    """
    _ensure_builtins()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown policy {name!r}; available: {available_policies()}"
        ) from None
    return factory(**kwargs)


def _ensure_builtins() -> None:
    """Populate the registry lazily (avoids import cycles with repro.core)."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    from repro.core.knapsack import KnapsackSdsrpPolicy
    from repro.core.sdsrp import SdsrpPolicy
    from repro.policies.copies_based import CopiesRatioPolicy
    from repro.policies.fifo import FifoPolicy
    from repro.policies.gbsd import GbsdPolicy
    from repro.policies.lifo import LifoPolicy
    from repro.policies.mofo import MofoPolicy
    from repro.policies.random_drop import RandomPolicy
    from repro.policies.shli import ShliPolicy
    from repro.policies.ttl_based import TtlRatioPolicy

    _REGISTRY.update(
        {
            "fifo": FifoPolicy,
            "lifo": LifoPolicy,
            "random": RandomPolicy,
            "snw-o": TtlRatioPolicy,
            "snw-c": CopiesRatioPolicy,
            "mofo": MofoPolicy,
            "shli": ShliPolicy,
            "sdsrp": SdsrpPolicy,
            "sdsrp-knapsack": KnapsackSdsrpPolicy,
            "gbsd": GbsdPolicy,
        }
    )
