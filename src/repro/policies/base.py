"""Buffer-policy interface.

A policy answers two questions for the router (the paper's two problems,
Sec. III-A):

1. **Scheduling** — in what order should buffered messages be offered to a
   peer?  Higher :meth:`BufferPolicy.send_priority` goes first.
2. **Dropping** — when the buffer overflows on an arrival, which message is
   sacrificed?  The message with the lowest :meth:`BufferPolicy.drop_priority`
   among the buffered (droppable) messages *and the newcomer* is dropped
   (Algorithm 1 of the paper).

The two rankings are separate because they disagree for FIFO: plain
Spray-and-Wait sends the *oldest* message first and also drops the oldest
first.

Policies also receive lifecycle hooks so stateful strategies (SDSRP's
dropped-list gossip and intermeeting estimation) can observe contacts and
drops without the router knowing their internals.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.net.message import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.simulator import Simulator
    from repro.rng import RngFactory
    from repro.world.node import Node


@dataclass
class PolicyContext:
    """What a policy may see of its host when attached."""

    node: "Node"
    sim: "Simulator"
    n_nodes: int
    #: The scenario's seeded stream registry; stochastic policies request
    #: node-scoped streams from it (``rng.stream(f"policy.x.{node.id}")``)
    #: so draws vary with the scenario seed yet stay per-node independent.
    rng: "RngFactory | None" = None


class BufferPolicy(ABC):
    """Scheduling + drop strategy for one node's buffer."""

    #: Registry / display name (set by subclasses).
    name: str = "abstract"

    #: If True, the newcomer competes on drop priority and can be rejected
    #: (Algorithm 1).  If False, room is always made for the newcomer by
    #: dropping buffered messages (ONE's default FIFO behaviour).
    compare_newcomer: bool = True

    #: If True, ranking a whole message list at once (:meth:`send_priorities`
    #: / :meth:`drop_priorities`) is *observably identical* to ranking each
    #: message on demand — pure functions of message/estimator state, no RNG
    #: draws or other per-query side effects.  The vector engine backend
    #: only batch-evaluates policies that opt in; lazily-stateful policies
    #: (e.g. random drop, which draws a sticky score on first query) must
    #: stay False or batching would reorder their side effects.
    batchable: bool = False

    def __init__(self) -> None:
        self.ctx: PolicyContext | None = None

    # -- lifecycle -----------------------------------------------------------

    def attach(self, ctx: PolicyContext) -> None:
        """Bind the policy to its node; called once before the run starts."""
        self.ctx = ctx

    # -- the two rankings ------------------------------------------------------

    @abstractmethod
    def send_priority(self, message: Message, now: float) -> float:
        """Higher value = offered to peers earlier."""

    @abstractmethod
    def drop_priority(self, message: Message, now: float) -> float:
        """Lower value = dropped earlier on overflow."""

    # -- batched rankings (vector engine backend) ------------------------------

    def send_priorities(self, messages: list[Message], now: float) -> list[float]:
        """Send priorities for *messages*, element-aligned.

        The default loops over :meth:`send_priority`; :attr:`batchable`
        policies override with an array kernel returning the exact same
        floats (pinned by ``tests/vector/test_kernels.py``).
        """
        return [self.send_priority(m, now) for m in messages]

    def drop_priorities(self, messages: list[Message], now: float) -> list[float]:
        """Drop priorities for *messages*, element-aligned (see above)."""
        return [self.drop_priority(m, now) for m in messages]

    # -- hooks (default: no-ops) -----------------------------------------------

    def will_accept(self, message: Message, now: float) -> bool:
        """Policy-level veto on receiving *message* (e.g. dropped-list reject)."""
        return True

    def on_message_added(self, message: Message, now: float) -> None:
        """Called after a message enters the host buffer."""

    def on_message_dropped(self, message: Message, now: float, reason: str) -> None:
        """Called when the host drops a message (reason: overflow/ttl/...)."""

    def on_link_up(self, peer: "Node", now: float) -> None:
        """Called when a contact with *peer* starts (gossip exchange point)."""

    def on_link_down(self, peer: "Node", now: float) -> None:
        """Called when the contact with *peer* ends."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class StaticRankPolicy(BufferPolicy):
    """Convenience base for stateless policies with a single ranking.

    Subclasses implement :meth:`priority`; it is used for both scheduling
    (send highest first) and dropping (drop lowest first).
    """

    @abstractmethod
    def priority(self, message: Message, now: float) -> float:
        """The single priority used for both rankings."""

    def send_priority(self, message: Message, now: float) -> float:
        return self.priority(message, now)

    def drop_priority(self, message: Message, now: float) -> float:
        return self.priority(message, now)
