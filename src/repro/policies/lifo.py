"""LIFO policy — newest-arrived is offered first and dropped first.

A classic queue-policy baseline from Lindgren & Phanse [9]; not in the
paper's comparison but useful as an extra reference point in the extended
benchmarks.
"""

from __future__ import annotations

from repro.net.message import Message
from repro.policies.base import BufferPolicy


class LifoPolicy(BufferPolicy):
    """Send newest first; drop newest first (newcomer loses ties)."""

    name = "lifo"
    compare_newcomer = True

    def __init__(self) -> None:
        super().__init__()
        self._arrival: dict[str, int] = {}
        self._counter = 0

    def _order(self, message: Message) -> int:
        if message.msg_id not in self._arrival:
            self._arrival[message.msg_id] = self._counter
            self._counter += 1
        return self._arrival[message.msg_id]

    def send_priority(self, message: Message, now: float) -> float:
        return float(self._order(message))

    def drop_priority(self, message: Message, now: float) -> float:
        return -float(self._order(message))

    def on_message_added(self, message: Message, now: float) -> None:
        self._order(message)

    def on_message_dropped(self, message: Message, now: float, reason: str) -> None:
        self._arrival.pop(message.msg_id, None)
