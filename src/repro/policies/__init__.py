"""Buffer-management policies (scheduling order + drop decision).

The paper compares four strategies on top of binary Spray-and-Wait:

* ``fifo``    — plain Spray-and-Wait: send oldest first, drop oldest
  (:class:`repro.policies.fifo.FifoPolicy`).
* ``snw-o``   — Spray-and-Wait-O: priority = remaining TTL / initial TTL
  (:class:`repro.policies.ttl_based.TtlRatioPolicy`).
* ``snw-c``   — Spray-and-Wait-C: priority = copies / initial copies
  (:class:`repro.policies.copies_based.CopiesRatioPolicy`).
* ``sdsrp``   — the paper's contribution
  (:class:`repro.core.sdsrp.SdsrpPolicy`, re-exported here).

Additional classic policies are included as extra baselines: LIFO, random,
MOFO (most-forwarded-first dropped) and SHLI (shortest-lifetime-first
dropped) from Lindgren & Phanse's queue-policy study [9].

Use :func:`make_policy` to construct any policy by name.
"""

from repro.policies.base import BufferPolicy, PolicyContext
from repro.policies.copies_based import CopiesRatioPolicy
from repro.policies.fifo import FifoPolicy
from repro.policies.lifo import LifoPolicy
from repro.policies.mofo import MofoPolicy
from repro.policies.random_drop import RandomPolicy
from repro.policies.registry import available_policies, make_policy, register_policy
from repro.policies.shli import ShliPolicy
from repro.policies.ttl_based import TtlRatioPolicy

__all__ = [
    "BufferPolicy",
    "CopiesRatioPolicy",
    "FifoPolicy",
    "LifoPolicy",
    "MofoPolicy",
    "PolicyContext",
    "RandomPolicy",
    "ShliPolicy",
    "TtlRatioPolicy",
    "available_policies",
    "make_policy",
    "register_policy",
]
